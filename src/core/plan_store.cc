#include "core/plan_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kernels/cost.h"

namespace astra {

namespace fs = std::filesystem;

uint64_t
fnv1a64(const void* data, size_t len, uint64_t seed)
{
    const auto* p = static_cast<const unsigned char*>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
fnv1a64(const std::string& bytes)
{
    return fnv1a64(bytes.data(), bytes.size(), 14695981039346656037ull);
}

std::string
hash_hex(uint64_t h)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

namespace {

/**
 * Incremental FNV-1a mixer: each fact of the graph walk feeds in as a
 * fixed-width integer, so the signature depends only on the facts, not
 * on any textual rendering of them.
 */
class Hasher
{
  public:
    void
    mix(uint64_t v)
    {
        h_ = fnv1a64(&v, sizeof(v), h_);
    }

    void
    mix(const std::string& s)
    {
        mix(static_cast<uint64_t>(s.size()));
        h_ = fnv1a64(s.data(), s.size(), h_);
    }

    void
    mix_f64(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 14695981039346656037ull;
};

/**
 * One canonical walk over everything a plan depends on. When
 * `mask_dims` is set, dimension values hash as their rank only — the
 * shape-class view under which batch/hidden-width neighbors collide.
 */
uint64_t
graph_signature(const Graph& graph, bool mask_dims)
{
    Hasher h;
    h.mix(static_cast<uint64_t>(graph.size()));
    for (const Node& n : graph.nodes()) {
        h.mix(static_cast<uint64_t>(n.kind));
        h.mix(static_cast<uint64_t>(n.inputs.size()));
        for (NodeId in : n.inputs)
            h.mix(static_cast<uint64_t>(in));
        h.mix(static_cast<uint64_t>(n.desc.dtype));
        const auto& dims = n.desc.shape.dims();
        h.mix(static_cast<uint64_t>(dims.size()));
        if (!mask_dims)
            for (int64_t d : dims)
                h.mix(static_cast<uint64_t>(d));
        h.mix(static_cast<uint64_t>(n.trans_a) |
              static_cast<uint64_t>(n.trans_b) << 1 |
              static_cast<uint64_t>(n.pass) << 2);
        h.mix_f64(static_cast<double>(n.scalar));
        if (!mask_dims) {
            h.mix(static_cast<uint64_t>(n.offset));
            h.mix(static_cast<uint64_t>(n.length));
        }
        // Scope is enumerator provenance (adjacency runs follow it),
        // so it shapes the search space and belongs in the identity.
        // The debug name does not.
        h.mix(n.scope);
    }
    h.mix(static_cast<uint64_t>(graph.outputs().size()));
    for (NodeId out : graph.outputs())
        h.mix(static_cast<uint64_t>(out));
    return h.value();
}

uint64_t
gpu_signature(const GpuConfig& gpu)
{
    // Only the timing model: knobs that perturb measurement (autoboost,
    // faults, tracing, kernel execution) change the exploration's
    // journey, never its converged answer, so they must not fragment
    // the knowledge base.
    Hasher h;
    h.mix(static_cast<uint64_t>(gpu.num_sms));
    h.mix_f64(gpu.flops_per_sm_ns);
    h.mix_f64(gpu.hbm_gbps);
    h.mix_f64(gpu.launch_overhead_ns);
    h.mix_f64(gpu.event_record_ns);
    h.mix_f64(gpu.event_enqueue_ns);
    return h.value();
}

uint64_t
lib_signature()
{
    Hasher h;
    h.mix(static_cast<uint64_t>(kNumGemmLibs));
    for (int lib = 0; lib < kNumGemmLibs; ++lib)
        h.mix(gemm_lib_name(static_cast<GemmLib>(lib)));
    return h.value();
}

constexpr const char* kEntryMagic = "astra-plan-store";
constexpr const char* kEntryVersion = "v1";
constexpr const char* kPriorsHeader = "astra-priors v1";

}  // namespace

PlanStoreKey
make_plan_store_key(const Graph& graph, const GpuConfig& gpu)
{
    PlanStoreKey key;
    key.graph_sig = graph_signature(graph, /*mask_dims=*/false);
    key.shape_class = graph_signature(graph, /*mask_dims=*/true);
    key.gpu_sig = gpu_signature(gpu);
    key.lib_sig = lib_signature();
    key.total_flops = graph.total_matmul_flops();
    return key;
}

const char*
store_tier_name(StoreTier t)
{
    switch (t) {
      case StoreTier::Miss:
        return "miss";
      case StoreTier::L3:
        return "l3";
      case StoreTier::L2:
        return "l2";
      case StoreTier::L1:
        return "l1";
    }
    return "miss";
}

PlanStore::PlanStore(fs::path dir)
    : dir_(std::move(dir))
{
}

std::string
PlanStore::entry_filename(const PlanStoreKey& key)
{
    // shape/gpu/lib lead so the L2 neighbor scan is a prefix match.
    return hash_hex(key.shape_class) + "." + hash_hex(key.gpu_sig) +
           "." + hash_hex(key.lib_sig) + "." + hash_hex(key.graph_sig) +
           ".plan";
}

std::string
PlanStore::entry_to_string(const PlanStoreEntry& entry)
{
    std::ostringstream payload;
    payload << "key " << hash_hex(entry.key.graph_sig) << " "
            << hash_hex(entry.key.shape_class) << " "
            << hash_hex(entry.key.gpu_sig) << " "
            << hash_hex(entry.key.lib_sig) << "\n";
    payload << std::hexfloat;
    payload << "flops " << entry.key.total_flops << "\n";
    payload << "best_ns " << entry.best_ns << "\n";
    payload << std::defaultfloat;
    payload << "minibatches " << entry.minibatches << "\n";
    payload << "termination " << entry.termination << "\n";
    payload << config_to_string(entry.config);
    write_profile_index(payload, entry.profile);
    const std::string body = payload.str();

    std::ostringstream out;
    out << kEntryMagic << " " << kEntryVersion << " " << body.size()
        << " " << hash_hex(fnv1a64(body)) << "\n"
        << body;
    return out.str();
}

bool
PlanStore::entry_from_string(const std::string& text,
                             PlanStoreEntry* entry, std::string* error)
{
    auto fail = [error](int line, const std::string& reason) {
        if (error != nullptr) {
            std::ostringstream os;
            os << "line " << line << ": " << reason;
            *error = os.str();
        }
        return false;
    };

    const size_t nl = text.find('\n');
    if (nl == std::string::npos)
        return fail(1, "missing frame header");
    {
        std::istringstream hs(text.substr(0, nl));
        std::string magic;
        std::string version;
        unsigned long long declared_len = 0;
        std::string checksum;
        if (!(hs >> magic >> version >> declared_len >> checksum) ||
            magic != kEntryMagic)
            return fail(1, "bad frame header (expected '" +
                               std::string(kEntryMagic) + " " +
                               kEntryVersion + " <len> <fnv64>')");
        if (version != kEntryVersion)
            return fail(1, "unsupported version '" + version + "'");
        const std::string body = text.substr(nl + 1);
        if (body.size() < declared_len)
            return fail(1, "truncated payload (declared " +
                               std::to_string(declared_len) +
                               " bytes, got " +
                               std::to_string(body.size()) + ")");
        if (body.size() > declared_len)
            return fail(1, "trailing bytes after declared payload");
        if (hash_hex(fnv1a64(body)) != checksum)
            return fail(1, "checksum mismatch (entry is corrupt)");
    }

    // Frame verified; parse the payload. Line numbers below are
    // payload-relative plus the one frame line.
    std::istringstream is(text.substr(nl + 1));
    int line_no = 1;
    std::string line;
    auto next = [&](std::istringstream* ls) {
        if (!std::getline(is, line))
            return false;
        ++line_no;
        ls->clear();
        ls->str(line);
        return true;
    };

    PlanStoreEntry out;
    std::istringstream ls;
    std::string tag;
    std::string g;
    std::string sc;
    std::string gpu;
    std::string lib;
    if (!next(&ls) ||
        !(ls >> tag >> g >> sc >> gpu >> lib) || tag != "key")
        return fail(line_no, "malformed key line");
    auto parse_hash = [](const std::string& s, uint64_t* out_h) {
        if (s.size() != 16)
            return false;
        uint64_t h = 0;
        for (char c : s) {
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else
                return false;
            h = h << 4 | static_cast<uint64_t>(d);
        }
        *out_h = h;
        return true;
    };
    if (!parse_hash(g, &out.key.graph_sig) ||
        !parse_hash(sc, &out.key.shape_class) ||
        !parse_hash(gpu, &out.key.gpu_sig) ||
        !parse_hash(lib, &out.key.lib_sig))
        return fail(line_no, "malformed key hash");

    auto read_f64 = [&](const char* want, double* v) {
        if (!next(&ls))
            return fail(line_no + 1, std::string("missing ") + want +
                                         " line");
        std::string tok;
        if (!(ls >> tag >> tok) || tag != want)
            return fail(line_no, std::string("malformed ") + want +
                                     " line");
        errno = 0;
        char* end = nullptr;
        *v = std::strtod(tok.c_str(), &end);
        if (errno != 0 || end != tok.c_str() + tok.size())
            return fail(line_no, std::string("malformed ") + want +
                                     " value '" + tok + "'");
        return true;
    };
    if (!read_f64("flops", &out.key.total_flops))
        return false;
    if (!read_f64("best_ns", &out.best_ns))
        return false;

    if (!next(&ls) || !(ls >> tag >> out.minibatches) ||
        tag != "minibatches" || out.minibatches < 0)
        return fail(line_no, "malformed minibatches line");
    if (!next(&ls) || !(ls >> tag >> out.termination) ||
        tag != "termination")
        return fail(line_no, "malformed termination line");

    // The rest of the payload is the config section followed by the
    // profile section; both readers know their own headers, so split
    // at the profile header line.
    std::string rest;
    {
        std::ostringstream os;
        os << is.rdbuf();
        rest = os.str();
    }
    const std::string profile_header = "astra-profile v1\n";
    size_t split = std::string::npos;
    if (rest.rfind(profile_header, 0) == 0)
        split = 0;
    else {
        const std::string marker = "\n" + profile_header;
        const size_t at = rest.find(marker);
        if (at != std::string::npos)
            split = at + 1;
    }
    if (split == std::string::npos)
        return fail(line_no + 1, "missing profile section");
    std::string sub_error;
    if (!config_from_string(rest.substr(0, split), &out.config,
                            &sub_error))
        return fail(line_no, "config section: " + sub_error);
    if (!profile_index_from_string(rest.substr(split), &out.profile,
                                   &sub_error))
        return fail(line_no, "profile section: " + sub_error);

    *entry = std::move(out);
    return true;
}

bool
PlanStore::write_file(const fs::path& path, const std::string& text,
                      std::string* error) const
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    // Temp + atomic rename: readers never observe a partial entry, and
    // the last concurrent writer wins whole. The temp name must be
    // unique per writer — a path-derived name would let two concurrent
    // writers (threads or processes) open the SAME temp file, so after
    // one renames it live the other keeps appending into the now-live
    // inode, tearing the entry for every peer that loads it.
    static std::atomic<uint64_t> write_seq{0};
    const uint64_t nonce =
        fnv1a64(path.string()) ^
        (static_cast<uint64_t>(::getpid()) << 32) ^
        write_seq.fetch_add(1, std::memory_order_relaxed);
    const fs::path tmp = path.string() + ".tmp." + hash_hex(nonce);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !(os << text) || !os.flush()) {
            if (error != nullptr)
                *error = "cannot write " + tmp.string();
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        if (error != nullptr)
            *error = "cannot rename " + tmp.string() + ": " +
                     ec.message();
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
PlanStore::read_entry_file(const fs::path& path, PlanStoreEntry* entry,
                           std::string* error) const
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error != nullptr)
            *error = path.filename().string() + ": cannot open";
        return false;
    }
    std::ostringstream os;
    os << is.rdbuf();
    std::string sub_error;
    if (!entry_from_string(os.str(), entry, &sub_error)) {
        if (error != nullptr)
            *error = path.filename().string() + ": " + sub_error;
        return false;
    }
    return true;
}

std::vector<int64_t>
PlanStore::read_priors(uint64_t gpu_sig, uint64_t lib_sig) const
{
    const fs::path path = dir_ / ("priors." + hash_hex(gpu_sig) + "." +
                                  hash_hex(lib_sig));
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return {};
    std::string header;
    if (!std::getline(is, header) || header != kPriorsHeader)
        return {};  // corrupt priors only lose advice, never fail a job
    std::vector<int64_t> wins;
    int64_t w = 0;
    while (is >> w)
        wins.push_back(w);
    if (wins.size() != static_cast<size_t>(kNumGemmLibs))
        return {};
    return wins;
}

bool
PlanStore::put(const PlanStoreEntry& entry, std::string* error)
{
    const fs::path path = dir_ / entry_filename(entry.key);
    if (!write_file(path, entry_to_string(entry), error))
        return false;

    // Fold the winner's library choices into the per-(gpu,lib) priors:
    // one win per node the config assigned a library to (group
    // assignments count once per group). Read-modify-write is lossy
    // under concurrent puts — priors are advice, so approximate counts
    // are acceptable where entry payloads are not.
    std::vector<int64_t> wins =
        read_priors(entry.key.gpu_sig, entry.key.lib_sig);
    if (wins.empty())
        wins.assign(static_cast<size_t>(kNumGemmLibs), 0);
    for (GemmLib lib : entry.config.group_lib)
        ++wins[static_cast<size_t>(lib)];
    for (const auto& [node, lib] : entry.config.single_lib)
        ++wins[static_cast<size_t>(lib)];
    std::ostringstream os;
    os << kPriorsHeader << "\n";
    for (int64_t w : wins)
        os << w << "\n";
    const fs::path priors = dir_ / ("priors." +
                                    hash_hex(entry.key.gpu_sig) + "." +
                                    hash_hex(entry.key.lib_sig));
    return write_file(priors, os.str(), error);
}

StoreLookup
PlanStore::lookup(const PlanStoreKey& key) const
{
    StoreLookup out;

    // L3 first: priors apply no matter how the per-graph rungs land,
    // and L2 reporting wants them already resolved.
    const std::vector<int64_t> wins =
        read_priors(key.gpu_sig, key.lib_sig);
    if (!wins.empty()) {
        int64_t best = 0;
        for (size_t lib = 0; lib < wins.size(); ++lib) {
            if (wins[lib] > best) {  // strict: ties keep the lowest index
                best = wins[lib];
                out.preferred_lib = static_cast<int>(lib);
            }
        }
        if (out.preferred_lib >= 0)
            out.tier = StoreTier::L3;
    }

    // L1: exact entry.
    const fs::path exact = dir_ / entry_filename(key);
    std::error_code ec;
    if (fs::exists(exact, ec)) {
        std::string error;
        if (read_entry_file(exact, &out.entry, &error) &&
            out.entry.key == key) {
            out.tier = StoreTier::L1;
            return out;
        }
        if (!error.empty())
            out.errors.push_back(error);
        else
            out.errors.push_back(exact.filename().string() +
                                 ": key mismatch (hash collision?)");
    }

    // L2: same shape class / device / libraries, different graph.
    // Deterministic choice: nearest |log flops ratio|, ties to the
    // lexicographically first filename (directory order is not stable
    // across filesystems, so sort explicitly).
    const std::string prefix = hash_hex(key.shape_class) + "." +
                               hash_hex(key.gpu_sig) + "." +
                               hash_hex(key.lib_sig) + ".";
    std::vector<std::string> names;
    if (fs::is_directory(dir_, ec))
        for (const auto& de : fs::directory_iterator(dir_, ec)) {
            const std::string name = de.path().filename().string();
            if (name.size() == prefix.size() + 16 + 5 &&
                name.rfind(prefix, 0) == 0 &&
                name.compare(name.size() - 5, 5, ".plan") == 0 &&
                name != entry_filename(key))
                names.push_back(name);
        }
    std::sort(names.begin(), names.end());
    PlanStoreEntry best_entry;
    double best_dist = 0.0;
    bool have = false;
    for (const std::string& name : names) {
        PlanStoreEntry candidate;
        std::string error;
        if (!read_entry_file(dir_ / name, &candidate, &error)) {
            out.errors.push_back(error);
            continue;
        }
        const double dist =
            (candidate.key.total_flops > 0.0 && key.total_flops > 0.0)
                ? std::abs(std::log(candidate.key.total_flops /
                                    key.total_flops))
                : 0.0;
        if (!have || dist < best_dist) {
            have = true;
            best_dist = dist;
            best_entry = std::move(candidate);
        }
    }
    if (have) {
        out.entry = std::move(best_entry);
        out.tier = StoreTier::L2;
    }
    return out;
}

std::string
plan_store_dir_from_env()
{
    const char* dir = std::getenv("ASTRA_PLAN_STORE");
    return dir != nullptr ? dir : "";
}

}  // namespace astra
