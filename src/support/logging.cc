#include "support/logging.h"

#include <mutex>

namespace astra::detail {

namespace {
std::mutex log_mutex;
}  // namespace

void
log_line(std::string_view level, const std::string& msg)
{
    std::scoped_lock lk(log_mutex);
    std::cerr << "[astra:" << level << "] " << msg << "\n";
}

}  // namespace astra::detail
