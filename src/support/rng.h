/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in Astra that needs randomness (synthetic data, autoboost
 * jitter, property-test inputs) draws from this engine so runs are exactly
 * reproducible from a seed. The engine is xoshiro256** seeded via
 * splitmix64, both public-domain algorithms.
 */
#pragma once

#include <cstdint>

namespace astra {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a single 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into four state words.
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next_u64()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    next_below(uint64_t bound)
    {
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for simulation purposes.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next_u64()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    next_range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        next_below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    next_float(float lo, float hi)
    {
        return lo + static_cast<float>(next_double()) * (hi - lo);
    }

    /** Approximately normal deviate (12-uniform sum), mean 0, stddev 1. */
    double
    next_gaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += next_double();
        return acc - 6.0;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
};

}  // namespace astra
