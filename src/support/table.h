/**
 * @file
 * Fixed-width text table printer. Every benchmark harness renders its
 * paper-table reproduction through this so output is uniform and easy
 * to diff against EXPERIMENTS.md.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace astra {

/** A simple left-column + numeric-columns text table. */
class TextTable
{
  public:
    /** @param title Caption printed above the table. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (first header labels the row-name column). */
    void set_header(std::vector<std::string> header);

    /** Append one row of pre-formatted cells. */
    void add_row(std::vector<std::string> cells);

    /** Append a row from a name plus doubles rendered with fixed digits. */
    void add_row(const std::string& name, const std::vector<double>& values,
                 int digits = 2);

    /** Render the table to a stream. */
    void print(std::ostream& os) const;

    /** Render the table to stdout. */
    void print() const;

    /** Format a double with fixed digits. */
    static std::string fmt(double v, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace astra
