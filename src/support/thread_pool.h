/**
 * @file
 * A small work-helping thread pool for deterministic fan-out.
 *
 * The parallel wirer (core/wirer.cc) runs per-allocation-strategy
 * exploration pipelines and batched repeat-measurements concurrently,
 * but every ordered reduction happens after the join — so the pool
 * only needs to guarantee that all tasks of a batch complete, never
 * anything about ordering. Two properties matter:
 *
 *  - **Caller helps.** parallel_for() claims and runs tasks on the
 *    calling thread while it waits, so a task running on a worker can
 *    itself call parallel_for() (nested fan-out: a strategy task
 *    batching its k-repeat measurements) without deadlocking even
 *    when every other worker is busy — the nested call makes progress
 *    on its own thread alone.
 *
 *  - **threads=1 is exactly the serial loop.** With no workers,
 *    parallel_for() runs the body inline in index order; callers can
 *    use one code path for both serial and parallel execution, which
 *    is what makes "bit-identical results at any thread count" a
 *    reviewable property instead of a hope.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace astra {

class ThreadPool
{
  public:
    /**
     * @param threads total parallelism including the calling thread;
     *        the pool spawns threads-1 workers. Values < 1 clamp to 1
     *        (no workers, fully inline execution).
     */
    explicit ThreadPool(int threads)
    {
        const int workers = threads > 1 ? threads - 1 : 0;
        workers_.reserve(static_cast<size_t>(workers));
        for (int i = 0; i < workers; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& t : workers_)
            t.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total parallelism (workers + the calling thread). */
    int threads() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * Tasks may run on workers or on the calling thread, in any order
     * and concurrently; fn must be safe for that. The first exception
     * thrown by any task is rethrown here (the rest of the batch still
     * runs to completion). Reentrant: fn may itself call parallel_for
     * on the same pool.
     */
    void parallel_for(int64_t n, const std::function<void(int64_t)>& fn)
    {
        if (n <= 0)
            return;
        if (workers_.empty() || n == 1) {
            for (int64_t i = 0; i < n; ++i)
                fn(i);
            return;
        }

        auto batch = std::make_shared<Batch>();
        batch->n = n;
        batch->fn = &fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            batches_.push_back(batch);
        }
        work_cv_.notify_all();

        // Help until our batch is fully claimed, then wait for the
        // in-flight stragglers (claimed by workers) to finish.
        while (run_one_task(batch.get())) {
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.wait(lock, [&] { return batch->done == batch->n; });
            if (batch->error)
                std::rethrow_exception(batch->error);
        }
    }

  private:
    struct Batch
    {
        int64_t n = 0;
        int64_t next = 0;  ///< first unclaimed index (guarded by mu_)
        int64_t done = 0;  ///< completed tasks (guarded by mu_)
        const std::function<void(int64_t)>* fn = nullptr;
        std::exception_ptr error;  ///< first failure (guarded by mu_)
    };

    /**
     * Claim and run one task. When `prefer` is given, only that
     * batch's tasks are claimed (the caller-helps path); workers pass
     * nullptr and take the oldest batch with unclaimed work. Returns
     * false when there was nothing to claim.
     */
    bool run_one_task(Batch* prefer)
    {
        std::shared_ptr<Batch> b;
        int64_t idx = -1;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto it = batches_.begin(); it != batches_.end();) {
                if ((*it)->next >= (*it)->n) {
                    // Fully claimed: nothing left to hand out.
                    it = batches_.erase(it);
                    continue;
                }
                if (!prefer || it->get() == prefer) {
                    b = *it;
                    idx = b->next++;
                    break;
                }
                ++it;
            }
        }
        if (!b)
            return false;
        try {
            (*b->fn)(idx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!b->error)
                b->error = std::current_exception();
        }
        bool batch_complete = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            batch_complete = ++b->done == b->n;
        }
        if (batch_complete)
            done_cv_.notify_all();
        return true;
    }

    void worker_loop()
    {
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                work_cv_.wait(lock, [&] {
                    if (stop_)
                        return true;
                    for (const auto& b : batches_)
                        if (b->next < b->n)
                            return true;
                    return false;
                });
                if (stop_)
                    return;
            }
            while (run_one_task(nullptr)) {
            }
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: new batch enqueued
    std::condition_variable done_cv_;  ///< callers: a batch completed
    std::deque<std::shared_ptr<Batch>> batches_;
    bool stop_ = false;
};

}  // namespace astra
