/**
 * @file
 * Status and error reporting for the Astra library.
 *
 * Follows the gem5 convention: fatal() is for user/environment error
 * (bad configuration, invalid arguments) and exits cleanly; panic() is
 * for internal invariant violations (a bug in this library) and aborts.
 * inform()/warn() report status without stopping execution.
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace astra {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
str_cat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void log_line(std::string_view level, const std::string& msg);

}  // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::log_line("info", detail::str_cat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::log_line("warn", detail::str_cat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a user-level error (bad config, bad arguments).
 * Exits with status 1; does not dump core.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::log_line("fatal", detail::str_cat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate because of an internal invariant violation (a library bug).
 * Aborts so a core/backtrace is available.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::log_line("panic", detail::str_cat(std::forward<Args>(args)...));
    std::abort();
}

/** panic() unless the stated invariant holds. */
#define ASTRA_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::astra::panic("assertion failed: ", #cond, " at ", __FILE__,    \
                           ":", __LINE__, " ", ::astra::detail::str_cat(     \
                               "" __VA_ARGS__));                             \
        }                                                                    \
    } while (0)

}  // namespace astra
