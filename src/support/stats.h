/**
 * @file
 * Small descriptive-statistics helpers used by profiling and the
 * benchmark harnesses.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "support/logging.h"

namespace astra {

/** Accumulates a stream of samples and reports summary statistics. */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        // Welford's online algorithm: numerically stable single pass.
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = count_ == 1 ? x : std::min(min_, x);
        max_ = count_ == 1 ? x : std::max(max_, x);
        samples_.push_back(x);
    }

    size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /** Coefficient of variation (stddev / mean); 0 if mean is 0. */
    double
    cov() const
    {
        return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
    }

    /** p in [0,1]; nearest-rank percentile over all added samples. */
    double
    percentile(double p) const
    {
        ASTRA_ASSERT(!samples_.empty());
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        const auto rank = static_cast<size_t>(
            p * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

}  // namespace astra
