#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace astra {

void
TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::add_row(const std::string& name, const std::vector<double>& values,
                   int digits)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(name);
    for (double v : values)
        cells.push_back(fmt(v, digits));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::fmt(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

void
TextTable::print(std::ostream& os) const
{
    // Column widths: max over header and all rows.
    std::vector<size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i == 0)
                os << "  " << std::left << std::setw(static_cast<int>(
                                               widths[i])) << cells[i];
            else
                os << "  " << std::right << std::setw(static_cast<int>(
                                                widths[i])) << cells[i];
        }
        os << "\n";
    };

    size_t total = 2;
    for (size_t w : widths)
        total += w + 2;

    os << "\n" << title_ << "\n" << std::string(total, '-') << "\n";
    if (!header_.empty()) {
        print_row(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_)
        print_row(row);
    os << std::string(total, '-') << "\n";
}

void
TextTable::print() const
{
    print(std::cout);
}

}  // namespace astra
