#include "autodiff/autodiff.h"

#include <vector>

#include "support/logging.h"

namespace astra {

namespace {

/** Collects gradient contributions per node and sums them on demand. */
class GradAccumulator
{
  public:
    explicit GradAccumulator(GraphBuilder& builder, int node_count)
        : builder_(builder),
          contributions_(static_cast<size_t>(node_count))
    {}

    void
    contribute(NodeId node, NodeId grad)
    {
        // Fold eagerly (like framework autograd's in-place .grad
        // accumulation): the partial dies immediately instead of
        // staying live until the end of the backward sweep, which
        // keeps the peak activation footprint realistic. Left-to-right
        // order matches the lazy fold bit for bit. The accumulation
        // node belongs to the gradient's *owner* (its provenance), not
        // to whichever consumer happened to contribute — otherwise a
        // layer-A-scoped add could consume layer-B gradients and back,
        // knotting per-layer subgraphs into cycles.
        auto& list = contributions_[static_cast<size_t>(node)];
        if (list.empty()) {
            list.push_back(grad);
            return;
        }
        const std::string saved = builder_.scope();
        builder_.set_scope(builder_.graph().node(node).scope);
        list[0] = builder_.add(list[0], grad);
        builder_.set_scope(saved);
    }

    bool
    has_grad(NodeId node) const
    {
        return !contributions_[static_cast<size_t>(node)].empty();
    }

    /**
     * Sum of all contributions for the node (emitting Add nodes for
     * multi-contribution sums), or kInvalidNode when none exist.
     */
    NodeId
    total(NodeId node)
    {
        auto& list = contributions_[static_cast<size_t>(node)];
        if (list.empty())
            return kInvalidNode;
        NodeId acc = list[0];
        for (size_t i = 1; i < list.size(); ++i)
            acc = builder_.add(acc, list[i]);
        // Replace the list with the folded sum so repeated calls are cheap.
        list.assign(1, acc);
        return acc;
    }

  private:
    GraphBuilder& builder_;
    std::vector<std::vector<NodeId>> contributions_;
};

/** Emit the vector-Jacobian product of one node, given its output grad. */
void
backprop_node(GraphBuilder& b, const Node& n, NodeId dy,
              GradAccumulator& acc)
{
    Graph& g = b.graph();
    switch (n.kind) {
      case OpKind::MatMul: {
        const NodeId a = n.inputs[0];
        const NodeId w = n.inputs[1];
        // C = op(A) * op(B). The four transpose cases below are the
        // standard matrix-calculus identities rearranged so that no
        // explicit transpose materialization is ever needed.
        NodeId da, db;
        if (!n.trans_a) {
            da = n.trans_b ? b.matmul(dy, w, false, false)
                           : b.matmul(dy, w, false, true);
        } else {
            da = n.trans_b ? b.matmul(w, dy, true, true)
                           : b.matmul(w, dy, false, true);
        }
        if (!n.trans_b) {
            db = n.trans_a ? b.matmul(a, dy, false, false)
                           : b.matmul(a, dy, true, false);
        } else {
            db = n.trans_a ? b.matmul(dy, a, true, true)
                           : b.matmul(dy, a, true, false);
        }
        acc.contribute(a, da);
        acc.contribute(w, db);
        break;
      }
      case OpKind::Add:
        acc.contribute(n.inputs[0], dy);
        acc.contribute(n.inputs[1], dy);
        break;
      case OpKind::Sub:
        acc.contribute(n.inputs[0], dy);
        acc.contribute(n.inputs[1], b.scale(dy, -1.0f));
        break;
      case OpKind::Mul:
        acc.contribute(n.inputs[0], b.mul(dy, n.inputs[1]));
        acc.contribute(n.inputs[1], b.mul(dy, n.inputs[0]));
        break;
      case OpKind::Sigmoid:
        acc.contribute(n.inputs[0], b.sigmoid_grad(dy, n.id));
        break;
      case OpKind::Tanh:
        acc.contribute(n.inputs[0], b.tanh_grad(dy, n.id));
        break;
      case OpKind::Relu:
        acc.contribute(n.inputs[0], b.relu_grad(dy, n.id));
        break;
      case OpKind::Scale:
        acc.contribute(n.inputs[0], b.scale(dy, n.scalar));
        break;
      case OpKind::OneMinus:
        acc.contribute(n.inputs[0], b.scale(dy, -1.0f));
        break;
      case OpKind::BiasAdd:
        acc.contribute(n.inputs[0], dy);
        acc.contribute(n.inputs[1], b.sum_rows(dy));
        break;
      case OpKind::Concat: {
        int64_t offset = 0;
        for (NodeId part : n.inputs) {
            const int64_t len = g.node(part).desc.shape.cols();
            acc.contribute(part, b.slice(dy, offset, len));
            offset += len;
        }
        break;
      }
      case OpKind::Copy:
        acc.contribute(n.inputs[0], dy);
        break;
      case OpKind::Embedding:
        acc.contribute(n.inputs[0],
                       b.embedding_grad(dy, n.inputs[1],
                                        g.node(n.inputs[0]).desc.shape));
        break;
      case OpKind::Softmax:
        acc.contribute(n.inputs[0], b.softmax_grad(dy, n.id));
        break;
      case OpKind::Input:
      case OpKind::InputIds:
      case OpKind::Param:
        break;  // sources terminate backpropagation
      case OpKind::CrossEntropy:
        panic("CrossEntropy must be the loss root, not an interior node");
      case OpKind::Slice:
      case OpKind::SumRows:
      case OpKind::EmbeddingGrad:
      case OpKind::CrossEntropyGrad:
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::ReluGrad:
      case OpKind::SoftmaxGrad:
        panic("no gradient rule for ", op_name(n.kind),
              " in a forward pass");
    }
}

}  // namespace

BackwardResult
append_backward(GraphBuilder& builder, NodeId loss)
{
    Graph& g = builder.graph();
    const int forward_size = g.size();
    GradAccumulator acc(builder, forward_size);

    const Pass saved_pass = builder.pass();
    const std::string saved_scope = builder.scope();
    builder.set_pass(Pass::Backward);

    // Seed: CrossEntropy differentiates directly into its logits; any
    // other scalar loss seeds with d(loss)/d(loss) handled by its own
    // rule via a unit contribution (not needed by the model zoo).
    // NOTE: nodes are copied (not referenced) throughout this function
    // because emitting backward nodes reallocates the node vector.
    const Node loss_node = g.node(loss);
    if (loss_node.kind == OpKind::CrossEntropy) {
        builder.set_scope(loss_node.scope);
        acc.contribute(loss_node.inputs[0],
                       builder.cross_entropy_grad(loss_node.inputs[0],
                                                  loss_node.inputs[1]));
    } else {
        fatal("append_backward: loss must be a CrossEntropy node");
    }

    BackwardResult result;
    // Reverse topological sweep over the forward graph. A node's grad is
    // complete once every (higher-id) user has been processed.
    for (NodeId id = static_cast<NodeId>(forward_size - 1); id >= 0; --id) {
        const Node n = g.node(id);  // copy: emissions may reallocate
        if (n.id == loss)
            continue;
        if (!acc.has_grad(id))
            continue;
        // Emit this node's backward ops under the forward provenance so
        // the enumerator can group sibling backward GEMMs (Fig. 1).
        builder.set_scope(n.scope);
        const NodeId dy = acc.total(id);
        if (n.kind == OpKind::Param) {
            result.param_grads[id] = dy;
            g.mark_output(dy);
            continue;
        }
        if (op_is_source(n.kind))
            continue;
        backprop_node(builder, n, dy, acc);
    }

    builder.set_pass(saved_pass);
    builder.set_scope(saved_scope);
    return result;
}

}  // namespace astra
