/**
 * @file
 * Reverse-mode automatic differentiation over the dataflow graph.
 *
 * Given a builder holding a forward graph and a scalar loss node,
 * append_backward() extends the same graph with the backward pass,
 * mirroring what PyTorch/TensorFlow autograd does (paper §5.1: "roughly
 * two-thirds of the computation happens during the backward pass").
 * Backward GEMMs inherit the provenance scope of the forward node they
 * differentiate, which is what lets the enumerator group them into the
 * backward-pass fusion sets of Fig. 1.
 */
#pragma once

#include <map>

#include "graph/builder.h"

namespace astra {

/** Result of differentiating a graph. */
struct BackwardResult
{
    /** Parameter node -> gradient node. */
    std::map<NodeId, NodeId> param_grads;
};

/**
 * Append the backward pass for `loss` to the builder's graph.
 *
 * Every parameter reachable from the loss receives a gradient node,
 * which is also marked as a graph output. The loss must be a
 * CrossEntropy node or any scalar-shaped node.
 *
 * @param builder holds the forward graph; receives the backward nodes.
 * @param loss the scalar loss node to differentiate.
 */
BackwardResult append_backward(GraphBuilder& builder, NodeId loss);

}  // namespace astra
