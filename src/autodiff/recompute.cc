#include "autodiff/recompute.h"

#include <set>
#include <vector>

#include "support/logging.h"

namespace astra {

namespace {

/** Re-emit one original node into the builder with remapped inputs. */
NodeId
emit_remapped(GraphBuilder& b, const Node& original,
              const std::vector<NodeId>& input_map)
{
    Node n;
    n.kind = original.kind;
    n.desc = original.desc;
    n.trans_a = original.trans_a;
    n.trans_b = original.trans_b;
    n.scalar = original.scalar;
    n.offset = original.offset;
    n.length = original.length;
    n.name = original.name;
    n.scope = original.scope;
    n.pass = original.pass;
    for (NodeId in : original.inputs) {
        const NodeId mapped = input_map[static_cast<size_t>(in)];
        ASTRA_ASSERT(mapped != kInvalidNode,
                     "recompute: input %", in, " not yet materialized");
        n.inputs.push_back(mapped);
    }
    return b.graph().add(std::move(n));
}

}  // namespace

RecomputePlan
apply_recompute(const Graph& graph, const BackwardResult& grads)
{
    RecomputePlan plan;
    plan.remap.assign(static_cast<size_t>(graph.size()), kInvalidNode);

    // ---- classify forward nodes ------------------------------------------
    // A forward node is a checkpoint (kept for the backward pass) when
    // a *forward* consumer lives in a different scope, or it is a graph
    // output, or it is a source. Interior activations are recomputable.
    std::vector<bool> checkpoint(static_cast<size_t>(graph.size()),
                                 false);
    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Forward)
            continue;
        if (op_is_source(n.kind)) {
            checkpoint[static_cast<size_t>(n.id)] = true;
            continue;
        }
        for (NodeId user : graph.users(n.id)) {
            const Node& u = graph.node(user);
            if (u.pass == Pass::Forward && u.scope != n.scope)
                checkpoint[static_cast<size_t>(n.id)] = true;
        }
    }
    for (NodeId out : graph.outputs())
        if (graph.node(out).pass == Pass::Forward)
            checkpoint[static_cast<size_t>(out)] = true;

    GraphBuilder& b = plan.builder;

    // ---- forward pass: emitted unchanged -----------------------------------
    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Forward)
            continue;
        plan.remap[static_cast<size_t>(n.id)] = emit_remapped(
            b, n, plan.remap);
    }

    // ---- backward pass with lazy re-materialization ------------------------
    // clone_map holds the backward-visible binding of every forward
    // node: the forward emission for checkpoints, a clone otherwise.
    std::vector<NodeId> clone_map(static_cast<size_t>(graph.size()),
                                  kInvalidNode);
    for (const Node& n : graph.nodes())
        if (n.pass == Pass::Forward && checkpoint[static_cast<size_t>(
                                           n.id)])
            clone_map[static_cast<size_t>(n.id)] =
                plan.remap[static_cast<size_t>(n.id)];

    std::set<std::string> cloned_scopes;
    auto materialize_scope = [&](const std::string& scope) {
        if (!cloned_scopes.insert(scope).second)
            return;
        // Re-emit the scope's recomputable nodes, in original order;
        // their inputs are checkpoints or earlier clones of the same
        // scope (cross-scope inputs are checkpoints by construction).
        for (const Node& n : graph.nodes()) {
            if (n.pass != Pass::Forward || n.scope != scope ||
                checkpoint[static_cast<size_t>(n.id)])
                continue;
            clone_map[static_cast<size_t>(n.id)] =
                emit_remapped(b, n, clone_map);
            ++plan.cloned_nodes;
        }
    };

    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Backward)
            continue;
        // Make sure every recomputable forward operand exists.
        for (NodeId in : n.inputs) {
            const Node& src = graph.node(in);
            if (src.pass == Pass::Forward &&
                !checkpoint[static_cast<size_t>(in)] &&
                clone_map[static_cast<size_t>(in)] == kInvalidNode)
                materialize_scope(src.scope);
        }
        // Emit the backward node against clones/checkpoints:
        // forward producers resolve through clone_map, backward
        // producers through remap.
        Node copy = n;
        copy.inputs.clear();
        for (NodeId in : n.inputs) {
            const Node& src = graph.node(in);
            const NodeId mapped =
                src.pass == Pass::Forward
                    ? clone_map[static_cast<size_t>(in)]
                    : plan.remap[static_cast<size_t>(in)];
            ASTRA_ASSERT(mapped != kInvalidNode,
                         "recompute: backward input %", in,
                         " unavailable");
            copy.inputs.push_back(mapped);
        }
        plan.remap[static_cast<size_t>(n.id)] =
            b.graph().add(std::move(copy));
    }

    // ---- outputs and gradients ---------------------------------------------
    for (NodeId out : graph.outputs())
        b.graph().mark_output(plan.remap[static_cast<size_t>(out)]);
    for (const auto& [param, grad] : grads.param_grads)
        plan.param_grads[plan.remap[static_cast<size_t>(param)]] =
            plan.remap[static_cast<size_t>(grad)];

    b.graph().validate();
    return plan;
}

}  // namespace astra
