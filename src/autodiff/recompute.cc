#include "autodiff/recompute.h"

#include <algorithm>
#include <set>
#include <vector>

#include "support/logging.h"

namespace astra {

namespace {

/** Re-emit one original node into the builder with remapped inputs. */
NodeId
emit_remapped(GraphBuilder& b, const Node& original,
              const std::vector<NodeId>& input_map)
{
    Node n;
    n.kind = original.kind;
    n.desc = original.desc;
    n.trans_a = original.trans_a;
    n.trans_b = original.trans_b;
    n.scalar = original.scalar;
    n.offset = original.offset;
    n.length = original.length;
    n.name = original.name;
    n.scope = original.scope;
    n.pass = original.pass;
    for (NodeId in : original.inputs) {
        const NodeId mapped = input_map[static_cast<size_t>(in)];
        ASTRA_ASSERT(mapped != kInvalidNode,
                     "recompute: input %", in, " not yet materialized");
        n.inputs.push_back(mapped);
    }
    return b.graph().add(std::move(n));
}

}  // namespace

RecomputePlan
apply_recompute(const Graph& graph, const BackwardResult& grads)
{
    RecomputePlan plan;
    plan.remap.assign(static_cast<size_t>(graph.size()), kInvalidNode);

    // ---- classify forward nodes ------------------------------------------
    // A forward node is a checkpoint (kept for the backward pass) when
    // a *forward* consumer lives in a different scope, or it is a graph
    // output, or it is a source. Interior activations are recomputable.
    std::vector<bool> checkpoint(static_cast<size_t>(graph.size()),
                                 false);
    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Forward)
            continue;
        if (op_is_source(n.kind)) {
            checkpoint[static_cast<size_t>(n.id)] = true;
            continue;
        }
        for (NodeId user : graph.users(n.id)) {
            const Node& u = graph.node(user);
            if (u.pass == Pass::Forward && u.scope != n.scope)
                checkpoint[static_cast<size_t>(n.id)] = true;
        }
    }
    for (NodeId out : graph.outputs())
        if (graph.node(out).pass == Pass::Forward)
            checkpoint[static_cast<size_t>(out)] = true;

    GraphBuilder& b = plan.builder;

    // ---- forward pass: emitted unchanged -----------------------------------
    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Forward)
            continue;
        plan.remap[static_cast<size_t>(n.id)] = emit_remapped(
            b, n, plan.remap);
    }

    // ---- backward pass with lazy re-materialization ------------------------
    // clone_map holds the backward-visible binding of every forward
    // node: the forward emission for checkpoints, a clone otherwise.
    std::vector<NodeId> clone_map(static_cast<size_t>(graph.size()),
                                  kInvalidNode);
    for (const Node& n : graph.nodes())
        if (n.pass == Pass::Forward && checkpoint[static_cast<size_t>(
                                           n.id)])
            clone_map[static_cast<size_t>(n.id)] =
                plan.remap[static_cast<size_t>(n.id)];

    // Clones carry no data dependency on the forward interiors they
    // replace, so nothing in the graph orders them after the forward
    // pass — under a streamed plan they could legally run concurrently
    // with it, which forbids the memory planner from letting them
    // recycle the interiors' (or earlier recompute generations')
    // buffers. Anchor each clone region behind the backward frontier:
    // non-source checkpoint reads of clones go through a Copy gate
    // whose extra inputs are the current *sinks* of the emitted
    // backward subgraph (emitted backward nodes without an emitted
    // consumer — one per open gradient branch, so the set stays
    // small). The gate's kernel only reads input 0 (values are
    // untouched); the extra edges make every clone a descendant of
    // everything already executed — exactly when the backward pass
    // triggers the re-materialization — restoring the rewrite's
    // peak-memory win under any legal schedule. A single frontier node
    // would not do: parallel branches (the per-parameter gradient
    // accumulators) are not ancestors of the newest emitted node.
    std::vector<NodeId> bwd_sinks;
    for (NodeId out : graph.outputs())
        if (graph.node(out).pass == Pass::Forward)
            bwd_sinks = {plan.remap[static_cast<size_t>(out)]};

    std::vector<NodeId> gate_map(static_cast<size_t>(graph.size()),
                                 kInvalidNode);
    auto gated = [&](NodeId in) -> NodeId {
        const NodeId bound = clone_map[static_cast<size_t>(in)];
        if (bwd_sinks.empty() || op_is_source(graph.node(in).kind))
            return bound;  // sources: gating would copy whole params
        NodeId& gate = gate_map[static_cast<size_t>(in)];
        if (gate == kInvalidNode) {
            Node g;
            g.kind = OpKind::Copy;
            g.inputs = {bound};
            for (NodeId s : bwd_sinks)
                if (s != bound)
                    g.inputs.push_back(s);
            g.desc = graph.node(in).desc;
            g.name = graph.node(in).name + ".gate";
            g.scope = graph.node(in).scope;
            g.pass = Pass::Backward;
            gate = b.graph().add(std::move(g));
            ++plan.gate_nodes;
        }
        return gate;
    };

    std::set<std::string> cloned_scopes;
    auto materialize_scope = [&](const std::string& scope) {
        if (!cloned_scopes.insert(scope).second)
            return;
        // Re-emit the scope's recomputable nodes, in original order;
        // their inputs are checkpoints (read through an ordering gate)
        // or earlier clones of the same scope (cross-scope inputs are
        // checkpoints by construction).
        for (const Node& n : graph.nodes()) {
            if (n.pass != Pass::Forward || n.scope != scope ||
                checkpoint[static_cast<size_t>(n.id)])
                continue;
            Node c;
            c.kind = n.kind;
            c.desc = n.desc;
            c.trans_a = n.trans_a;
            c.trans_b = n.trans_b;
            c.scalar = n.scalar;
            c.offset = n.offset;
            c.length = n.length;
            c.name = n.name;
            c.scope = n.scope;
            c.pass = n.pass;
            for (NodeId in : n.inputs) {
                const NodeId mapped =
                    checkpoint[static_cast<size_t>(in)]
                        ? gated(in)
                        : clone_map[static_cast<size_t>(in)];
                ASTRA_ASSERT(mapped != kInvalidNode,
                             "recompute: input %", in,
                             " not yet materialized");
                c.inputs.push_back(mapped);
            }
            clone_map[static_cast<size_t>(n.id)] =
                b.graph().add(std::move(c));
            ++plan.cloned_nodes;
        }
    };

    for (const Node& n : graph.nodes()) {
        if (n.pass != Pass::Backward)
            continue;
        // Make sure every recomputable forward operand exists.
        for (NodeId in : n.inputs) {
            const Node& src = graph.node(in);
            if (src.pass == Pass::Forward &&
                !checkpoint[static_cast<size_t>(in)] &&
                clone_map[static_cast<size_t>(in)] == kInvalidNode)
                materialize_scope(src.scope);
        }
        // Emit the backward node against clones/checkpoints:
        // forward producers resolve through clone_map, backward
        // producers through remap.
        Node copy = n;
        copy.inputs.clear();
        for (NodeId in : n.inputs) {
            const Node& src = graph.node(in);
            const NodeId mapped =
                src.pass == Pass::Forward
                    ? clone_map[static_cast<size_t>(in)]
                    : plan.remap[static_cast<size_t>(in)];
            ASTRA_ASSERT(mapped != kInvalidNode,
                         "recompute: backward input %", in,
                         " unavailable");
            copy.inputs.push_back(mapped);
        }
        const NodeId emitted = b.graph().add(std::move(copy));
        plan.remap[static_cast<size_t>(n.id)] = emitted;
        for (NodeId in : b.graph().node(emitted).inputs)
            bwd_sinks.erase(
                std::remove(bwd_sinks.begin(), bwd_sinks.end(), in),
                bwd_sinks.end());
        bwd_sinks.push_back(emitted);
    }

    // ---- outputs and gradients ---------------------------------------------
    for (NodeId out : graph.outputs())
        b.graph().mark_output(plan.remap[static_cast<size_t>(out)]);
    for (const auto& [param, grad] : grads.param_grads)
        plan.param_grads[plan.remap[static_cast<size_t>(param)]] =
            plan.remap[static_cast<size_t>(grad)];

    b.graph().validate();
    return plan;
}

}  // namespace astra
