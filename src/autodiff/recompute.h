/**
 * @file
 * Recompute-for-memory rewriting (paper §3.4): "dynamically trade off
 * computation for memory; saving part of the memory used for
 * forward-pass activations by redoing the computation".
 *
 * The rewrite keeps checkpoint activations (anything that crosses a
 * provenance-scope boundary, e.g. the per-timestep recurrent states)
 * and re-materializes everything else right before the backward pass
 * needs it. With the liveness-based memory planner the interior
 * activations then die at the end of the forward pass, shrinking the
 * peak footprint — the head-room that lets a training job fit a larger
 * mini-batch (the paper's 2x example). Whether the extra compute pays
 * for itself is exactly the kind of question Astra answers by
 * measuring, not modelling (see bench/ablation_recompute).
 */
#pragma once

#include <map>

#include "autodiff/autodiff.h"

namespace astra {

/** Outcome of the recompute rewrite: a new, value-equivalent graph. */
struct RecomputePlan
{
    /** Owns the rewritten graph. */
    GraphBuilder builder;

    /** Old node id -> new node id (sources, checkpoints, backward). */
    std::vector<NodeId> remap;

    /** Parameter -> gradient node, in new-graph ids. */
    std::map<NodeId, NodeId> param_grads;

    /** Forward nodes that were re-materialized for the backward pass. */
    int cloned_nodes = 0;

    /** Ordering gates inserted between the loss and the clone region. */
    int gate_nodes = 0;

    const Graph& graph() const { return builder.graph(); }
};

/**
 * Rewrite a training graph so the backward pass recomputes interior
 * forward activations instead of keeping them live.
 *
 * Checkpoints (kept, not recomputed): graph sources, graph outputs,
 * and any forward node consumed from a different provenance scope —
 * for unrolled RNNs that is precisely the per-timestep state tensors.
 *
 * The rewritten graph is value-identical to the original: clones
 * execute the same ops on the same inputs, bit for bit.
 */
RecomputePlan apply_recompute(const Graph& graph,
                              const BackwardResult& grads);

}  // namespace astra
