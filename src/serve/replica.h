/**
 * @file
 * One failure domain of the serving fleet.
 *
 * A Replica is the unit the router (serve/router.h) routes around: it
 * owns its own simulated device configuration (its clock domain — an
 * independently-applied ClockStep schedule), its own installed wired
 * plans (one BucketPlan slot per length bucket, behind a swap mutex,
 * exactly the single-server install/snapshot discipline), its own
 * drift/degradation state, and its own counters. It deliberately does
 * NOT own exploration sessions: all replicas serve plans lowered by the
 * fleet's prototype BucketedServer, so a fleet of G replicas costs one
 * wiring run, not G — the paper's predictability argument applied to
 * the fleet (identical DFG ⇒ identical plan), while each replica's
 * *execution* stays in its own clock/fault domain.
 *
 * Liveness is not stored here: it is a pure function of simulated time
 * (sim/faults.h replica_alive), so the router asks the schedule, and
 * what the Replica tracks is the router's *belief* (ReplicaHealth) —
 * the gap between the two is exactly the heartbeat detection window
 * the chaos bench pins.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/server.h"
#include "sim/faults.h"

namespace astra::serve {

/** The router's belief about a replica. */
enum class ReplicaHealth
{
    Healthy,   ///< routable, serving wired plans
    Degraded,  ///< routable, but >=1 bucket fell back to generic dispatch
    Dead,      ///< not routable (heartbeat deadline missed)
};

/** Stable lowercase name ("healthy", "degraded", "dead"). */
const char* replica_health_name(ReplicaHealth h);

/** Per-replica tallies folded into the FleetReport. */
struct ReplicaStats
{
    int64_t batches = 0;          ///< dispatched mini-batches
    int64_t generic_batches = 0;  ///< served via generic dispatch
    int64_t served = 0;           ///< requests completed here
    int64_t failed_batches = 0;   ///< batches lost to a death mid-flight
    int64_t rewires = 0;
    int64_t swaps = 0;            ///< plan installs (incl. swap-backs)
    int64_t swap_backs = 0;       ///< degraded -> wired recoveries
    int64_t deaths = 0;           ///< detected down transitions
    int64_t rejoins = 0;          ///< detected up transitions
};

/** Construction-time identity of one replica. */
struct ReplicaOptions
{
    int id = 0;

    /** This replica's device (its own clock/fault domain). */
    GpuConfig gpu;

    /** Injected drift schedule for this replica alone. */
    std::vector<ClockStep> clock_schedule;
};

/**
 * Plan slots + health + clock domain of one replica. Thread-safe where
 * the single-server slots are (install/plan snapshot under a mutex);
 * everything else is owned by the router's single-threaded DES loop.
 */
class Replica
{
  public:
    explicit Replica(ReplicaOptions opts, int num_buckets);

    Replica(const Replica&) = delete;
    Replica& operator=(const Replica&) = delete;

    int id() const { return opts_.id; }

    /** Swap-safe snapshot of a bucket's installed plan. */
    BucketedServer::BucketPlan plan(int bucket) const;

    /** Install a plan revision (stamps the next epoch). */
    void install(int bucket, BucketedServer::BucketPlan plan);

    /**
     * The device configuration at simulated time t_ns: base config
     * with every clock step at_ns <= t_ns applied, in order. Steps are
     * consumed monotonically — callers advance time forward only.
     */
    const GpuConfig& gpu_at(double t_ns);

    /** Ground-truth liveness under the fault plan (oracle, not belief). */
    bool alive_at(const FaultPlan& faults, double t_ns) const;

    // ---- router belief + degradation state (DES-thread only) ---------

    ReplicaHealth health() const { return health_; }
    void set_health(ReplicaHealth h) { health_ = h; }

    /** True when this bucket's wired blob is invalidated. */
    bool degraded(int bucket) const;

    /**
     * Invalidate/revalidate one bucket's wired blob. While degraded
     * the router serves the bucket via generic dispatch — the blob is
     * never replayed once its baseline is stale (drift demotion) or
     * its verification failed; correctness first, host overhead second.
     */
    void set_degraded(int bucket, bool on);

    /** Any bucket currently degraded? */
    bool any_degraded() const;

    ReplicaStats& stats() { return stats_; }
    const ReplicaStats& stats() const { return stats_; }

  private:
    ReplicaOptions opts_;

    mutable std::mutex slots_mu_;
    std::vector<BucketedServer::BucketPlan> slots_;

    GpuConfig gpu_;          ///< base config with applied steps
    size_t next_step_ = 0;   ///< first unapplied clock step

    ReplicaHealth health_ = ReplicaHealth::Healthy;
    std::vector<char> degraded_;
    ReplicaStats stats_;
};

}  // namespace astra::serve
