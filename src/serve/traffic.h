/**
 * @file
 * Open-loop traffic generation for the online serving scenario.
 *
 * Inference traffic, unlike training, arrives on its own clock: an
 * open-loop generator emits requests at times the server cannot slow
 * down, so queueing delay — not just service time — shapes the latency
 * distribution. Arrivals follow a non-homogeneous Poisson process (a
 * base rate modulated by a diurnal burst schedule, sampled by
 * thinning), and each request carries a PTB-like variable token length
 * (models/data.h's sentence-length sampler, the same distribution the
 * paper calibrated its Table 8 buckets on) plus an absolute deadline
 * (arrival + SLO). Generation is a pure function of the config — the
 * same seed replays the same trace, so benches can compare serving
 * policies on identical workloads.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace astra::serve {

/** One inference request of the open-loop stream. */
struct ServeRequest
{
    int64_t id = 0;

    /** Absolute arrival time on the simulated clock (ns). */
    double arrival_ns = 0.0;

    /** True token length (pre-padding). */
    int length = 0;

    /** Absolute completion deadline (arrival + SLO), ns. */
    double deadline_ns = 0.0;
};

/** One diurnal phase: rate multiplier over [start_ns, end_ns). */
struct BurstPhase
{
    double start_ns = 0.0;
    double end_ns = 0.0;
    double rate_multiplier = 1.0;  ///< multiplies the base rate
};

/** Parameters of one generated trace. */
struct TrafficConfig
{
    /** Open-loop horizon: arrivals are generated in [0, duration_ns). */
    double duration_ns = 1e9;

    /** Base arrival rate in requests per simulated second. */
    double base_rps = 100.0;

    /**
     * Diurnal burst schedule. Phases may overlap; the rate at time t is
     * base_rps times the product of every phase covering t (empty =
     * flat Poisson traffic).
     */
    std::vector<BurstPhase> bursts;

    /** Per-request SLO: deadline_ns = arrival_ns + slo_ns. */
    double slo_ns = 50e6;

    /** PTB length scale divisor (graphs unroll per token; 1:4 scale). */
    int length_div = 4;

    /** Floor on sampled lengths. */
    int min_length = 2;

    uint64_t seed = 1;

    /** Rate multiplier in effect at time t (product of live phases). */
    double rate_multiplier_at(double t_ns) const;

    /** Largest multiplier over the horizon (thinning envelope). */
    double peak_multiplier() const;
};

/**
 * Generate the full arrival trace, sorted by arrival time. Ids number
 * the requests 0..n-1 in arrival order.
 */
std::vector<ServeRequest> generate_traffic(const TrafficConfig& cfg);

}  // namespace astra::serve
