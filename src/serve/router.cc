#include "serve/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <utility>

#include "obs/obs.h"
#include "runtime/dispatcher.h"
#include "support/logging.h"

namespace astra::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double
median_of_tail(const std::vector<double>& window, int n)
{
    ASTRA_ASSERT(static_cast<int>(window.size()) >= n && n > 0);
    std::vector<double> tail(window.end() - n, window.end());
    std::sort(tail.begin(), tail.end());
    return tail[tail.size() / 2];
}

/**
 * First simulated time in [a, b] at which the replica is down under
 * the plan, expressed as the governing *down edge* (the moment of its
 * last heartbeat) — which may precede `a` when the window opens inside
 * a down interval. -1 when the replica is up throughout [a, b].
 */
double
first_down_in(const FaultPlan& faults, int id, double a, double b)
{
    const std::vector<double> edges =
        replica_transitions(faults, id, b + 1.0);
    bool alive = replica_alive(faults, id, 0.0);
    double down_start = alive ? -1.0 : 0.0;
    for (double e : edges) {
        if (alive) {
            alive = false;
            down_start = e;
            if (e >= a && e <= b)
                return e;
        } else {
            if (down_start <= a && a < e)
                return down_start;
            alive = true;
        }
    }
    if (!alive && down_start <= b)
        return down_start;
    return -1.0;
}

/** One scheduled router-visible liveness event. */
struct LiveEvent
{
    double at_ns = 0.0;   ///< when the router acts
    int replica = 0;
    bool death = false;   ///< true: heartbeat deadline; false: rejoin
    double edge_ns = 0.0; ///< the underlying liveness edge
};

/** A request waiting out its failover backoff. */
struct RetryEntry
{
    double ready_ns = 0.0;
    ServeRequest req;
};

/** One in-flight mini-batch on a replica. */
struct Flight
{
    bool active = false;
    int bucket = 0;
    std::vector<ServeRequest> reqs;
    double start_ns = 0.0;
    double end_ns = 0.0;
    bool fails = false;     ///< the replica dies under this batch
    double event_ns = 0.0;  ///< completion (or failure-detection) time
    double service_ns = 0.0;
    double baseline_ns = 0.0;
    int plan_epoch = 0;
    uint64_t config_fnv = 0;
    bool generic = false;
};

/** How one request's story ended (exactly-once audit). */
enum class Resolution : uint8_t
{
    Pending,
    Served,
    Rejected,  ///< strict-overflow refusal at admission
    Evicted,   ///< lost to the capacity bound (either policy)
    Shed,      ///< dropped as hopeless before dispatch
    Failed,    ///< retries exhausted / fleet extinct
};

}  // namespace

std::string
FleetReport::to_text(const std::string& title) const
{
    std::string s = total.to_text(title);
    char buf[160];
    const auto line = [&](const char* key, int64_t v) {
        std::snprintf(buf, sizeof(buf), "  %-22s %lld\n", key,
                      static_cast<long long>(v));
        s += buf;
    };
    line("shed", shed);
    line("evicted", evicted);
    line("failed", failed);
    line("double_served", double_served);
    line("retries", retries);
    line("failed_batches", failed_batches);
    line("deaths_detected", deaths_detected);
    line("rejoins", rejoins);
    line("failover_detect_budget", failover_detect_budget);
    line("generic_batches", generic_batches);
    line("swap_backs", swap_backs);
    for (size_t i = 0; i < replicas.size(); ++i) {
        const ReplicaStats& r = replicas[i];
        std::snprintf(buf, sizeof(buf),
                      "  replica[%zu]             batches=%lld "
                      "generic=%lld served=%lld failed_batches=%lld "
                      "rewires=%lld swaps=%lld swap_backs=%lld "
                      "deaths=%lld rejoins=%lld\n",
                      i, static_cast<long long>(r.batches),
                      static_cast<long long>(r.generic_batches),
                      static_cast<long long>(r.served),
                      static_cast<long long>(r.failed_batches),
                      static_cast<long long>(r.rewires),
                      static_cast<long long>(r.swaps),
                      static_cast<long long>(r.swap_backs),
                      static_cast<long long>(r.deaths),
                      static_cast<long long>(r.rejoins));
        s += buf;
    }
    return s;
}

ReplicaFleet::ReplicaFleet(FleetOptions opts)
    : opts_(std::move(opts))
{
    ASTRA_ASSERT(opts_.replicas >= 1);
    ASTRA_ASSERT(!opts_.base.bucket_lengths.empty());
    faults_ = opts_.faults.empty() ? opts_.base.astra.gpu.faults
                                   : opts_.faults;
    proto_ = std::make_unique<BucketedServer>(opts_.base);
    const int buckets =
        static_cast<int>(opts_.base.bucket_lengths.size());
    for (int i = 0; i < opts_.replicas; ++i) {
        ReplicaOptions ro;
        ro.id = i;
        ro.gpu = opts_.base.astra.gpu;
        if (static_cast<size_t>(i) < opts_.replica_clocks.size() &&
            !opts_.replica_clocks[static_cast<size_t>(i)].empty())
            ro.clock_schedule =
                opts_.replica_clocks[static_cast<size_t>(i)];
        else if (i == 0)
            ro.clock_schedule = opts_.base.clock_schedule;
        replicas_.push_back(
            std::make_unique<Replica>(std::move(ro), buckets));
    }
}

ReplicaFleet::~ReplicaFleet() = default;

Replica&
ReplicaFleet::replica(int i)
{
    ASTRA_ASSERT(i >= 0 && i < num_replicas());
    return *replicas_[static_cast<size_t>(i)];
}

const Replica&
ReplicaFleet::replica(int i) const
{
    ASTRA_ASSERT(i >= 0 && i < num_replicas());
    return *replicas_[static_cast<size_t>(i)];
}

int64_t
ReplicaFleet::optimize()
{
    obs::ScopedSpan span(obs::Category::Serve, "serve.fleet.optimize");
    // One wiring run for the whole fleet: identical DFG, identical
    // plan (the paper's predictability argument). Each replica gets
    // its own epoch-0 install of the shared blobs.
    const int64_t total = proto_->optimize();
    const int buckets =
        static_cast<int>(opts_.base.bucket_lengths.size());
    double max_baseline = 0.0;
    for (int b = 0; b < buckets; ++b) {
        const BucketedServer::BucketPlan p = proto_->plan(b);
        max_baseline = std::max(max_baseline, p.baseline_ns);
        for (auto& r : replicas_)
            r->install(b, p);
    }
    heartbeat_ns_ = opts_.heartbeat_timeout_ns > 0.0
                        ? opts_.heartbeat_timeout_ns
                        : 2.0 * max_baseline;
    optimized_ = true;
    return total;
}

FleetReport
ReplicaFleet::serve(const std::vector<ServeRequest>& traffic)
{
    static obs::Counter& c_deaths =
        obs::counter("serve.failover.deaths");
    static obs::Counter& c_rejoins =
        obs::counter("serve.failover.rejoins");
    static obs::Counter& c_retries =
        obs::counter("serve.failover.retries");
    static obs::Counter& c_failed =
        obs::counter("serve.failover.failed");
    static obs::Counter& c_shed = obs::counter("serve.failover.shed");
    static obs::Counter& c_evicted =
        obs::counter("serve.failover.evicted");
    static obs::Counter& c_generic =
        obs::counter("serve.failover.generic_batches");
    static obs::Counter& c_swap_back =
        obs::counter("serve.failover.swap_backs");

    ASTRA_ASSERT(optimized_, "call optimize() first");
    obs::ScopedSpan span(obs::Category::Serve, "serve.fleet.loop");

    const int G = num_replicas();
    const int buckets =
        static_cast<int>(opts_.base.bucket_lengths.size());
    FleetReport rep;
    rep.replicas.resize(static_cast<size_t>(G));
    rep.total.offered = static_cast<int64_t>(traffic.size());
    // Per-call state: every serve() starts at t=0 with fresh beliefs
    // (the fault schedule is absolute simulated time), while installed
    // plans persist across calls like the single server's.
    for (auto& r : replicas_) {
        r->stats() = ReplicaStats{};
        r->set_health(ReplicaHealth::Healthy);
        for (int b = 0; b < buckets; ++b)
            r->set_degraded(b, false);
    }

    AdmissionQueue queue(proto_->router(), opts_.queue_capacity,
                         opts_.queue_policy);
    MetricsRecorder metrics;

    // Same watcher discipline as the single server, with the replica
    // id folded into the epoch-mangled key so one replica's drift
    // never pollutes a peer's window.
    MeasurementPolicy watch_policy = opts_.base.astra.measurement;
    watch_policy.outlier_mad_k = 0.0;
    ProfileIndex watch(watch_policy);
    const double drift_rel =
        opts_.base.watcher.drift_rel > 0.0
            ? opts_.base.watcher.drift_rel
            : opts_.base.astra.measurement.store_drift_rel;

    // ---- exactly-once resolution table -------------------------------
    std::unordered_map<int64_t, Resolution> res;
    res.reserve(traffic.size());
    for (const ServeRequest& r : traffic)
        res.emplace(r.id, Resolution::Pending);
    ASTRA_ASSERT(res.size() == traffic.size(),
                 "traffic ids must be unique");
    int64_t resolved = 0;
    const auto resolve = [&](int64_t id, Resolution out) {
        auto it = res.find(id);
        ASTRA_ASSERT(it != res.end());
        if (it->second != Resolution::Pending) {
            if (out == Resolution::Served)
                ++rep.double_served;
            return false;
        }
        it->second = out;
        ++resolved;
        return true;
    };

    // ---- precomputed liveness timeline -------------------------------
    double horizon_ns = 0.0;
    for (const ServeRequest& r : traffic)
        horizon_ns = std::max(horizon_ns, r.deadline_ns);
    horizon_ns = horizon_ns * 4.0 + 1e10;

    std::vector<LiveEvent> live;
    double first_down_ns = -1.0;
    for (int i = 0; i < G; ++i) {
        const std::vector<double> edges =
            replica_transitions(faults_, i, horizon_ns);
        bool alive = replica_alive(faults_, i, 0.0);
        for (size_t k = 0; k < edges.size(); ++k) {
            if (alive) {
                alive = false;
                // A flap shorter than the heartbeat timeout never
                // misses a deadline: the router sees a failed batch at
                // worst, not a death.
                const double next_up =
                    k + 1 < edges.size() ? edges[k + 1] : -1.0;
                if (next_up < 0.0 ||
                    next_up >= edges[k] + heartbeat_ns_) {
                    live.push_back({edges[k] + heartbeat_ns_, i, true,
                                    edges[k]});
                    if (first_down_ns < 0.0 || edges[k] < first_down_ns)
                        first_down_ns = edges[k];
                }
            } else {
                alive = true;
                live.push_back({edges[k], i, false, edges[k]});
            }
        }
    }
    std::sort(live.begin(), live.end(),
              [](const LiveEvent& a, const LiveEvent& b) {
                  if (a.at_ns != b.at_ns)
                      return a.at_ns < b.at_ns;
                  if (a.replica != b.replica)
                      return a.replica < b.replica;
                  return a.death < b.death;
              });
    size_t next_live = 0;

    // ---- DES state ----------------------------------------------------
    std::vector<Flight> flights(static_cast<size_t>(G));
    std::vector<std::vector<BucketedServer::BucketPlan>> pending(
        static_cast<size_t>(G));
    std::vector<std::vector<double>> pending_ready(
        static_cast<size_t>(G));
    std::vector<std::vector<char>> pending_active(
        static_cast<size_t>(G));
    for (int i = 0; i < G; ++i) {
        pending[static_cast<size_t>(i)].resize(
            static_cast<size_t>(buckets));
        pending_ready[static_cast<size_t>(i)].assign(
            static_cast<size_t>(buckets), 0.0);
        pending_active[static_cast<size_t>(i)].assign(
            static_cast<size_t>(buckets), 0);
    }
    std::vector<RetryEntry> retries;
    std::unordered_map<int64_t, int> attempts;

    double now_ns = 0.0;
    size_t next_arrival = 0;
    int64_t served_total = 0;
    int64_t served_at_down = -1;
    int64_t victims = 0;  ///< admitted-then-evicted (capacity losses)
    double last_completion_ns = 0.0;

    const auto backoff_ns = [&](int attempt) {
        return faults_.backoff_us * 1000.0 *
               std::pow(2.0, attempt - 1);
    };

    const auto declare_dead = [&](int i) {
        Replica& r = *replicas_[static_cast<size_t>(i)];
        if (r.health() == ReplicaHealth::Dead)
            return;
        r.set_health(ReplicaHealth::Dead);
        ++r.stats().deaths;
        ++rep.deaths_detected;
        c_deaths.add();
        if (rep.failover_detect_budget < 0 && served_at_down >= 0)
            rep.failover_detect_budget = served_total - served_at_down;
    };

    const auto fail_over = [&](const ServeRequest& req,
                               double detect_ns) {
        const int attempt = ++attempts[req.id];
        if (attempt > faults_.max_retries) {
            if (resolve(req.id, Resolution::Failed)) {
                ++rep.failed;
                c_failed.add();
            }
            return;
        }
        ++rep.retries;
        c_retries.add();
        retries.push_back({detect_ns + backoff_ns(attempt), req});
    };

    const auto admit_due = [&] {
        while (next_arrival < traffic.size() &&
               traffic[next_arrival].arrival_ns <= now_ns) {
            const ServeRequest& r = traffic[next_arrival];
            const int64_t rej_before = queue.rejected();
            const AdmitResult ar = queue.admit_bounded(r);
            if (ar.evicted) {
                if (resolve(ar.victim.id, Resolution::Evicted)) {
                    ++rep.evicted;
                    ++victims;
                    c_evicted.add();
                }
            }
            if (!ar.admitted) {
                if (queue.rejected() > rej_before) {
                    resolve(r.id, Resolution::Rejected);
                } else if (resolve(r.id, Resolution::Evicted)) {
                    ++rep.evicted;
                    c_evicted.add();
                }
            }
            ++next_arrival;
        }
    };

    const auto release_due_retries = [&] {
        std::vector<ServeRequest> due;
        for (auto it = retries.begin(); it != retries.end();) {
            if (it->ready_ns <= now_ns) {
                due.push_back(it->req);
                it = retries.erase(it);
            } else {
                ++it;
            }
        }
        // requeue() pushes at the front; insert youngest-first so the
        // oldest request ends up at the very head.
        std::sort(due.begin(), due.end(),
                  [](const ServeRequest& a, const ServeRequest& b) {
                      if (a.arrival_ns != b.arrival_ns)
                          return a.arrival_ns > b.arrival_ns;
                      return a.id > b.id;
                  });
        for (const ServeRequest& r : due)
            queue.requeue(r);
    };

    const auto process_live = [&] {
        while (next_live < live.size() &&
               live[next_live].at_ns <= now_ns) {
            const LiveEvent& e = live[next_live++];
            Replica& r = *replicas_[static_cast<size_t>(e.replica)];
            if (e.death) {
                declare_dead(e.replica);
            } else if (r.health() == ReplicaHealth::Dead) {
                r.set_health(r.any_degraded() ? ReplicaHealth::Degraded
                                              : ReplicaHealth::Healthy);
                ++r.stats().rejoins;
                ++rep.rejoins;
                c_rejoins.add();
            }
        }
    };

    const auto process_flights = [&] {
        for (int i = 0; i < G; ++i) {
            Flight& f = flights[static_cast<size_t>(i)];
            if (!f.active || f.event_ns > now_ns)
                continue;
            Replica& r = *replicas_[static_cast<size_t>(i)];
            ReplicaStats& rs = r.stats();
            if (f.fails) {
                // The batch died with its replica: every request fails
                // over (bounded retry), nothing completes here.
                ++rs.failed_batches;
                ++rep.failed_batches;
                for (const ServeRequest& req : f.reqs)
                    fail_over(req, f.event_ns);
                // Continuously down past the heartbeat deadline means
                // this is a death, not a blip; the scheduled liveness
                // event agrees (declare_dead is idempotent).
                if (!r.alive_at(faults_, f.event_ns))
                    declare_dead(i);
                f.active = false;
                continue;
            }
            int64_t real_tokens = 0;
            for (const ServeRequest& req : f.reqs)
                real_tokens += req.length;
            const int bucket_len =
                opts_.base
                    .bucket_lengths[static_cast<size_t>(f.bucket)];
            metrics.batch(static_cast<int>(f.reqs.size()),
                          opts_.base.max_batch, real_tokens,
                          bucket_len);
            ++rs.batches;
            if (f.generic) {
                ++rs.generic_batches;
                ++rep.generic_batches;
                c_generic.add();
            }
            for (const ServeRequest& req : f.reqs) {
                if (resolve(req.id, Resolution::Served)) {
                    metrics.complete(f.end_ns - req.arrival_ns,
                                     f.end_ns > req.deadline_ns);
                    ++served_total;
                    ++rs.served;
                }
            }
            last_completion_ns =
                std::max(last_completion_ns, f.end_ns);
            if (opts_.base.record_batches) {
                BatchRecord brec;
                brec.bucket = f.bucket;
                brec.size = static_cast<int>(f.reqs.size());
                brec.start_ns = f.start_ns;
                brec.end_ns = f.end_ns;
                brec.plan_epoch = f.plan_epoch;
                brec.config_fnv = f.config_fnv;
                rep.total.batch_log.push_back(brec);
            }

            // Drift watcher (wired path only: a degraded bucket is
            // already invalidated and re-wiring).
            if (opts_.base.watcher.enabled && !f.generic &&
                !pending_active[static_cast<size_t>(i)]
                               [static_cast<size_t>(f.bucket)]) {
                const std::string key =
                    "serve|r" + std::to_string(i) + "|b" +
                    std::to_string(bucket_len) + "|e" +
                    std::to_string(f.plan_epoch);
                watch.record(key, f.service_ns);
                const ProfileStats* stats = watch.stats(key);
                if (stats != nullptr &&
                    static_cast<int>(stats->window().size()) >=
                        opts_.base.watcher.min_window) {
                    const double med =
                        median_of_tail(stats->window(),
                                       opts_.base.watcher.min_window);
                    if (med > (1.0 + drift_rel) * f.baseline_ns) {
                        // Invalidate the blob: this bucket degrades to
                        // generic dispatch while the re-wire runs
                        // off-path.
                        ++rep.total.drift_detections;
                        r.set_degraded(f.bucket, true);
                        if (r.health() == ReplicaHealth::Healthy)
                            r.set_health(ReplicaHealth::Degraded);
                        GpuConfig gpu = r.gpu_at(f.end_ns);
                        pending[static_cast<size_t>(i)]
                               [static_cast<size_t>(f.bucket)] =
                                   proto_->rewire(f.bucket, gpu);
                        pending_ready[static_cast<size_t>(i)]
                                     [static_cast<size_t>(f.bucket)] =
                            f.end_ns + opts_.base.rewire_latency_ns;
                        pending_active[static_cast<size_t>(i)]
                                      [static_cast<size_t>(
                                          f.bucket)] = 1;
                        ++rs.rewires;
                        ++rep.total.rewires;
                    }
                }
            }
            f.active = false;
        }
    };

    // ---- the DES loop -------------------------------------------------
    while (resolved < rep.total.offered) {
        if (first_down_ns >= 0.0 && now_ns >= first_down_ns &&
            served_at_down < 0)
            served_at_down = served_total;
        process_flights();
        process_live();
        admit_due();
        release_due_retries();

        // Dispatch onto every idle, routable replica.
        bool waiting_for_arrivals = false;
        for (int i = 0; i < G && !waiting_for_arrivals; ++i) {
            Replica& r = *replicas_[static_cast<size_t>(i)];
            if (flights[static_cast<size_t>(i)].active ||
                r.health() == ReplicaHealth::Dead)
                continue;
            for (;;) {
                const int b = queue.most_urgent_bucket();
                if (b < 0)
                    break;

                // Pending hot-swap lands at the batch boundary: the
                // swap-back is what ends a bucket's degradation.
                if (pending_active[static_cast<size_t>(i)]
                                  [static_cast<size_t>(b)] &&
                    now_ns >= pending_ready[static_cast<size_t>(i)]
                                           [static_cast<size_t>(b)]) {
                    const bool was_degraded = r.degraded(b);
                    r.install(b,
                              std::move(pending[static_cast<size_t>(i)]
                                               [static_cast<size_t>(
                                                   b)]));
                    pending_active[static_cast<size_t>(i)]
                                  [static_cast<size_t>(b)] = 0;
                    ++r.stats().swaps;
                    ++rep.total.swaps;
                    if (was_degraded) {
                        r.set_degraded(b, false);
                        ++r.stats().swap_backs;
                        ++rep.swap_backs;
                        c_swap_back.add();
                        if (r.health() == ReplicaHealth::Degraded &&
                            !r.any_degraded())
                            r.set_health(ReplicaHealth::Healthy);
                    }
                }

                const BucketedServer::BucketPlan p = r.plan(b);

                // EDF goodput rule: before spending a batch, shed
                // requests that cannot make their deadline even if
                // launched right now.
                if (opts_.queue_policy == QueuePolicy::EdfShed) {
                    const std::vector<ServeRequest> hopeless =
                        queue.shed_hopeless(b, now_ns, p.baseline_ns);
                    for (const ServeRequest& sreq : hopeless) {
                        if (resolve(sreq.id, Resolution::Shed)) {
                            ++rep.shed;
                            c_shed.add();
                        }
                    }
                    if (queue.depth(b) == 0)
                        continue;  // bucket emptied; re-pick
                }

                // Dynamic batching patience (single-server rule).
                const double launch_by =
                    queue.head(b).deadline_ns -
                    (1.0 + opts_.base.batch_wait_frac) * p.baseline_ns;
                if (static_cast<int>(queue.depth(b)) <
                        opts_.base.max_batch &&
                    next_arrival < traffic.size() &&
                    now_ns < launch_by &&
                    traffic[next_arrival].arrival_ns <= launch_by) {
                    waiting_for_arrivals = true;
                    break;
                }

                const GpuConfig& gpu = r.gpu_at(now_ns);
                const std::vector<ServeRequest> batch =
                    queue.pop_batch(b, opts_.base.max_batch);
                const int bucket_len =
                    opts_.base
                        .bucket_lengths[static_cast<size_t>(b)];
                const bool generic = r.degraded(b);
                DispatchResult dr;
                {
                    obs::ScopedSpan batch_span(
                        obs::Category::Serve,
                        "serve.batch.r" + std::to_string(i) + ".b" +
                            std::to_string(bucket_len),
                        /*lane=*/i);
                    if (generic) {
                        // Invalidated blob: never replay it. The
                        // generic dispatcher runs the same plan from
                        // its uncompiled form — identical simulated
                        // semantics, no stale compiled stream.
                        const AstraSession& s =
                            proto_->router().session(b);
                        dr = dispatch_plan(
                            *s.scheduler().build_cached(p.config),
                            s.graph(),
                            s.tensor_map(p.config.strategy), gpu);
                    } else {
                        dr = replay_wired(*p.binary, gpu);
                    }
                }

                Flight& f = flights[static_cast<size_t>(i)];
                f.active = true;
                f.bucket = b;
                f.reqs = batch;
                f.start_ns = now_ns;
                f.end_ns = now_ns + dr.total_ns;
                f.service_ns = dr.total_ns;
                f.baseline_ns = p.baseline_ns;
                f.plan_epoch = p.epoch;
                f.config_fnv = p.config_fnv;
                f.generic = generic;
                // Ground truth decides the outcome: if the replica is
                // down at any point under the batch, the batch is lost
                // and the router finds out at the heartbeat deadline.
                const double down =
                    first_down_in(faults_, i, f.start_ns, f.end_ns);
                f.fails = down >= 0.0;
                f.event_ns =
                    f.fails ? down + heartbeat_ns_ : f.end_ns;
                break;
            }
        }

        // Advance to the next event.
        double t_next = kInf;
        if (next_arrival < traffic.size())
            t_next = std::min(t_next,
                              traffic[next_arrival].arrival_ns);
        for (const RetryEntry& e : retries)
            t_next = std::min(t_next, e.ready_ns);
        for (const Flight& f : flights)
            if (f.active)
                t_next = std::min(t_next, f.event_ns);
        if (next_live < live.size())
            t_next = std::min(t_next, live[next_live].at_ns);

        if (t_next == kInf) {
            // Nothing can ever happen again (typically: the whole
            // fleet is down with no revival scheduled). Every request
            // still holding a slot resolves as failed — lost requests
            // are a counted outcome, never a silent one.
            while (!queue.empty()) {
                const int b = queue.most_urgent_bucket();
                for (const ServeRequest& req :
                     queue.pop_batch(b, 1 << 20)) {
                    if (resolve(req.id, Resolution::Failed)) {
                        ++rep.failed;
                        c_failed.add();
                    }
                }
            }
            for (const RetryEntry& e : retries) {
                if (resolve(e.req.id, Resolution::Failed)) {
                    ++rep.failed;
                    c_failed.add();
                }
            }
            retries.clear();
            break;
        }
        if (t_next > now_ns)
            now_ns = t_next;
        else if (queue.empty() && next_arrival < traffic.size())
            now_ns = std::max(now_ns,
                              traffic[next_arrival].arrival_ns);
    }

    rep.total.admitted = queue.admitted();
    rep.total.rejected = queue.rejected();
    rep.total.makespan_ns = last_completion_ns;
    rep.total.detection_request_budget = rep.failover_detect_budget;
    metrics.finalize(&rep.total);
    // Exactly-once audit: every admitted request ended exactly one
    // way — served, shed as hopeless, failed out, or evicted by the
    // capacity bound. Anything left over was *lost*, which the chaos
    // gates require to be zero.
    rep.total.dropped = rep.total.admitted - rep.total.served -
                        rep.shed - rep.failed - victims;
    for (int i = 0; i < G; ++i)
        rep.replicas[static_cast<size_t>(i)] =
            replicas_[static_cast<size_t>(i)]->stats();
    return rep;
}

}  // namespace astra::serve
