#include "serve/replica.h"

#include <utility>

#include "support/logging.h"

namespace astra::serve {

const char*
replica_health_name(ReplicaHealth h)
{
    switch (h) {
      case ReplicaHealth::Healthy: return "healthy";
      case ReplicaHealth::Degraded: return "degraded";
      case ReplicaHealth::Dead: return "dead";
    }
    return "?";
}

Replica::Replica(ReplicaOptions opts, int num_buckets)
    : opts_(std::move(opts)),
      slots_(static_cast<size_t>(num_buckets)),
      gpu_(opts_.gpu),
      degraded_(static_cast<size_t>(num_buckets), 0)
{
    ASTRA_ASSERT(num_buckets > 0);
}

BucketedServer::BucketPlan
Replica::plan(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(slots_.size()));
    std::lock_guard<std::mutex> lock(slots_mu_);
    return slots_[static_cast<size_t>(bucket)];
}

void
Replica::install(int bucket, BucketedServer::BucketPlan plan)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(slots_.size()));
    ASTRA_ASSERT(plan.binary != nullptr);
    std::lock_guard<std::mutex> lock(slots_mu_);
    // First install into an empty slot is epoch 0 (the initial
    // wiring), mirroring the single-server convention; every later
    // install is a hot-swap and stamps the next epoch.
    auto& slot = slots_[static_cast<size_t>(bucket)];
    plan.epoch = slot.binary == nullptr ? 0 : slot.epoch + 1;
    slot = std::move(plan);
}

const GpuConfig&
Replica::gpu_at(double t_ns)
{
    while (next_step_ < opts_.clock_schedule.size() &&
           opts_.clock_schedule[next_step_].at_ns <= t_ns) {
        gpu_.forced_clock_multiplier =
            opts_.clock_schedule[next_step_].clock_multiplier;
        ++next_step_;
    }
    return gpu_;
}

bool
Replica::alive_at(const FaultPlan& faults, double t_ns) const
{
    return replica_alive(faults, opts_.id, t_ns);
}

bool
Replica::degraded(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(degraded_.size()));
    return degraded_[static_cast<size_t>(bucket)] != 0;
}

void
Replica::set_degraded(int bucket, bool on)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(degraded_.size()));
    degraded_[static_cast<size_t>(bucket)] = on ? 1 : 0;
}

bool
Replica::any_degraded() const
{
    for (char d : degraded_)
        if (d != 0)
            return true;
    return false;
}

}  // namespace astra::serve
