/**
 * @file
 * Health-checked failover routing across a multi-replica serving fleet.
 *
 * The single-server loop (serve/server.h) assumes its device survives
 * the run. A fleet does not get that luxury: replicas die mid-batch,
 * flap, and drift — and traffic can exceed what the survivors can
 * carry. ReplicaFleet runs G Replica failure domains behind one
 * admission queue and one discrete-event loop, with four duties:
 *
 *  1. *Detection.* Replica liveness is a pure function of simulated
 *     time (sim/faults.h replica_death / replica_flap specs). Replicas
 *     heartbeat continuously while alive; the router declares a
 *     replica Dead when the heartbeat deadline (down edge +
 *     heartbeat_timeout_ns) passes, and an in-flight batch on a dying
 *     replica surfaces at the same deadline. Because both the fault
 *     schedule and the traffic are seeded, every detection time — and
 *     therefore every failover count — is bit-reproducible.
 *
 *  2. *Failover.* A failed batch's requests are re-queued at the front
 *     of their bucket (age order preserved, never re-counted as
 *     admissions) after an exponential backoff
 *     (FaultPlan::backoff_us * 2^(attempt-1)), bounded by
 *     FaultPlan::max_retries. Completion is exactly-once by
 *     construction: a per-request resolution table asserts no request
 *     is lost and none is double-served.
 *
 *  3. *Shedding.* Under overload a bounded queue with
 *     QueuePolicy::EdfShed evicts the latest-deadline request instead
 *     of tail-dropping the newest (serve/queue.h), and each dispatch
 *     first sheds requests whose deadline can no longer be met even if
 *     launched immediately — capacity goes to requests that still can
 *     win, so goodput strictly beats FIFO strict-overflow.
 *
 *  4. *Graceful degradation.* When a replica's drift watcher fires,
 *     its wired blob is *invalidated* — the bucket falls back to
 *     generic dispatch (same simulated semantics, no stale compiled
 *     stream) while a re-wire runs off-path, then hot-swaps back to
 *     the wired path. The swap-back is a counted recovery, and a
 *     replica killed between "re-wire ready" and "swap installed"
 *     simply never installs: its traffic fails over like any other.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/queue.h"
#include "serve/replica.h"
#include "serve/server.h"
#include "sim/faults.h"

namespace astra::serve {

/** All knobs of one fleet serving run. */
struct FleetOptions
{
    /**
     * The single-server knobs every replica inherits: buckets, model
     * builder, session options (device, measurement, plan store),
     * batching, watcher, re-wire latency. base.clock_schedule applies
     * to replica 0 only (per-replica schedules via replica_clocks).
     */
    ServeOptions base;

    /** Fleet size (failure domains). */
    int replicas = 2;

    /**
     * Per-replica drift schedules (index = replica id). Missing ids:
     * replica 0 falls back to base.clock_schedule, others are calm.
     */
    std::vector<std::vector<ClockStep>> replica_clocks;

    /**
     * Heartbeat deadline: a replica is declared Dead this long after
     * its last heartbeat (its down edge). <= 0 auto-derives
     * 2 x the largest bucket baseline — one missed batch-time is
     * ambiguity, two is a verdict.
     */
    double heartbeat_timeout_ns = 0.0;

    /** Per-bucket queue bound (0 = unbounded) and overflow policy. */
    size_t queue_capacity = 0;
    QueuePolicy queue_policy = QueuePolicy::FifoOverflow;

    /**
     * Replica death/flap schedule. Empty: inherits whatever
     * base.astra.gpu.faults carries (which itself defaults to
     * ASTRA_FAULTS), so chaos CI can arm the fleet via environment.
     */
    FaultPlan faults;
};

/** End-to-end outcome of one fleet serve() run. */
struct FleetReport
{
    /** Aggregate request accounting + latency (all replicas). */
    ServeReport total;

    // ---- resolution accounting (exactly-once audit) ------------------
    int64_t shed = 0;         ///< dropped as hopeless before dispatch
    int64_t evicted = 0;      ///< EdfShed victims at admission
    int64_t failed = 0;       ///< retries exhausted / fleet extinct
    int64_t double_served = 0;  ///< completions of an already-resolved id (must be 0)

    // ---- failover path ----------------------------------------------
    int64_t retries = 0;      ///< re-queued after a failed batch
    int64_t failed_batches = 0;
    int64_t deaths_detected = 0;
    int64_t rejoins = 0;

    /**
     * Requests completed fleet-wide between the first actual down edge
     * and its detection (-1 when no replica ever died) — the failover
     * detection budget the chaos bench pins.
     */
    int64_t failover_detect_budget = -1;

    // ---- degradation path -------------------------------------------
    int64_t generic_batches = 0;  ///< served with an invalidated blob bypassed
    int64_t swap_backs = 0;       ///< degraded -> wired recoveries

    std::vector<ReplicaStats> replicas;

    /** Render as an aligned text block (benches, examples). */
    std::string to_text(const std::string& title) const;
};

/**
 * The fleet runtime: one prototype BucketedServer for wiring/lowering
 * (plans are shared — identical DFG, identical plan), G Replica
 * failure domains for execution, one DES loop for routing.
 */
class ReplicaFleet
{
  public:
    explicit ReplicaFleet(FleetOptions opts);
    ~ReplicaFleet();

    ReplicaFleet(const ReplicaFleet&) = delete;
    ReplicaFleet& operator=(const ReplicaFleet&) = delete;

    /**
     * Offline phase: wire every bucket once on the prototype, then
     * install the epoch-0 plans on every replica. Returns total
     * exploration mini-batches (one wiring run for the whole fleet).
     */
    int64_t optimize();

    /** Drain one generated trace through the fleet (DES). */
    FleetReport serve(const std::vector<ServeRequest>& traffic);

    int num_replicas() const
    {
        return static_cast<int>(replicas_.size());
    }

    Replica& replica(int i);
    const Replica& replica(int i) const;

    /** The prototype server (tests: rewire, plan snapshots). */
    BucketedServer& prototype() { return *proto_; }

    /** The effective fault plan (explicit or device-inherited). */
    const FaultPlan& faults() const { return faults_; }

    /** The effective heartbeat timeout (after auto-derivation). */
    double heartbeat_timeout_ns() const { return heartbeat_ns_; }

  private:
    FleetOptions opts_;
    FaultPlan faults_;
    double heartbeat_ns_ = 0.0;
    std::unique_ptr<BucketedServer> proto_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    bool optimized_ = false;
};

}  // namespace astra::serve
