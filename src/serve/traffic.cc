#include "serve/traffic.h"

#include <algorithm>
#include <cmath>

#include "models/data.h"
#include "support/logging.h"
#include "support/rng.h"

namespace astra::serve {

double
TrafficConfig::rate_multiplier_at(double t_ns) const
{
    double m = 1.0;
    for (const BurstPhase& p : bursts)
        if (t_ns >= p.start_ns && t_ns < p.end_ns)
            m *= p.rate_multiplier;
    return m;
}

double
TrafficConfig::peak_multiplier() const
{
    // Phase boundaries are the only points the (piecewise-constant)
    // multiplier can change. Both ends are change points: with
    // overlapping phases the rate also rises when a sub-unity phase
    // *ends* (e.g. [0,100)x2.0 overlapped by [0,50)x0.1 peaks on
    // [50,100)), so probe every start and every end.
    double peak = 1.0;
    peak = std::max(peak, rate_multiplier_at(0.0));
    for (const BurstPhase& p : bursts) {
        peak = std::max(peak, rate_multiplier_at(p.start_ns));
        peak = std::max(peak, rate_multiplier_at(p.end_ns));
    }
    return peak;
}

std::vector<ServeRequest>
generate_traffic(const TrafficConfig& cfg)
{
    ASTRA_ASSERT(cfg.duration_ns > 0.0 && cfg.base_rps > 0.0);
    ASTRA_ASSERT(cfg.slo_ns > 0.0);
    ASTRA_ASSERT(cfg.length_div > 0 && cfg.min_length > 0);
    for (const BurstPhase& p : cfg.bursts)
        ASTRA_ASSERT(p.rate_multiplier > 0.0 && p.end_ns > p.start_ns);

    Rng rng(cfg.seed);
    std::vector<ServeRequest> out;

    // Thinning (Lewis & Shedler): draw candidate arrivals from a
    // homogeneous Poisson process at the peak rate, accept each with
    // probability rate(t) / peak_rate. Exact for piecewise-constant
    // rates, and one RNG stream keeps the trace a pure function of the
    // seed.
    const double peak_rps = cfg.base_rps * cfg.peak_multiplier();
    const double mean_gap_ns = 1e9 / peak_rps;
    double t = 0.0;
    while (true) {
        // Exponential inter-arrival gap; clamp the uniform draw away
        // from 0 so log() stays finite.
        const double u = std::max(rng.next_double(), 1e-12);
        t += -std::log(u) * mean_gap_ns;
        if (t >= cfg.duration_ns)
            break;
        const double accept =
            cfg.rate_multiplier_at(t) * cfg.base_rps / peak_rps;
        if (rng.next_double() >= accept)
            continue;
        ServeRequest r;
        r.id = static_cast<int64_t>(out.size());
        r.arrival_ns = t;
        r.length = std::max(cfg.min_length,
                            sample_ptb_length(rng) / cfg.length_div);
        r.deadline_ns = t + cfg.slo_ns;
        out.push_back(r);
    }
    return out;
}

}  // namespace astra::serve
