#include "serve/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/config_io.h"
#include "core/plan_store.h"
#include "obs/obs.h"
#include "support/logging.h"

namespace astra::serve {

namespace {

/** Owns the graph + session a re-wired blob was lowered against. */
struct RewireState
{
    std::unique_ptr<GraphBuilder> builder;
    std::unique_ptr<AstraSession> session;
};

double
median_of_tail(const std::vector<double>& window, int n)
{
    ASTRA_ASSERT(static_cast<int>(window.size()) >= n && n > 0);
    std::vector<double> tail(window.end() - n, window.end());
    std::sort(tail.begin(), tail.end());
    return tail[tail.size() / 2];
}

}  // namespace

uint64_t
config_fingerprint(const ScheduleConfig& config)
{
    return fnv1a64(config_to_string(config));
}

BucketedServer::BucketedServer(ServeOptions opts)
    : opts_(std::move(opts))
{
    ASTRA_ASSERT(!opts_.bucket_lengths.empty());
    ASTRA_ASSERT(opts_.max_batch > 0);
    ASTRA_ASSERT(opts_.batch_wait_frac >= 0.0);
    router_ = std::make_unique<BucketedAstra>(opts_.bucket_lengths,
                                              opts_.build, opts_.astra);
    router_->set_strict_overflow(opts_.strict_overflow);
    slots_.resize(opts_.bucket_lengths.size());
}

BucketedServer::~BucketedServer() = default;

int64_t
BucketedServer::optimize()
{
    obs::ScopedSpan span(obs::Category::Serve, "serve.optimize");
    const int64_t total = router_->optimize();
    for (int i = 0; i < router_->num_buckets(); ++i) {
        const AstraSession& s = router_->session(i);
        const WirerResult& r = router_->bucket_result(i);
        BucketPlan p;
        // Lower through the scheduler's wired cache: verify_wired runs
        // inside, so an illegal lowering fails here, not mid-serve.
        p.binary = s.scheduler().wire_cached(
            r.best_config, s.tensor_map(r.best_config.strategy),
            opts_.astra.gpu);
        p.config = r.best_config;
        p.config_fnv = config_fingerprint(r.best_config);
        p.baseline_ns = r.best_ns;
        p.epoch = 0;
        // The router owns the session; no extra retention needed.
        std::lock_guard<std::mutex> lock(slots_mu_);
        slots_[static_cast<size_t>(i)] = std::move(p);
    }
    optimized_ = true;
    return total;
}

BucketedServer::BucketPlan
BucketedServer::plan(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(slots_.size()));
    std::lock_guard<std::mutex> lock(slots_mu_);
    return slots_[static_cast<size_t>(bucket)];
}

void
BucketedServer::install(int bucket, BucketPlan plan)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(slots_.size()));
    ASTRA_ASSERT(plan.binary != nullptr);
    std::lock_guard<std::mutex> lock(slots_mu_);
    plan.epoch = slots_[static_cast<size_t>(bucket)].epoch + 1;
    slots_[static_cast<size_t>(bucket)] = std::move(plan);
}

BucketedServer::BucketPlan
BucketedServer::rewire(int bucket, const GpuConfig& gpu) const
{
    obs::ScopedSpan span(obs::Category::Serve, "serve.rewire");
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(opts_.bucket_lengths.size()));
    const int len =
        opts_.bucket_lengths[static_cast<size_t>(bucket)];

    auto state = std::make_shared<RewireState>();
    state->builder = std::make_unique<GraphBuilder>();
    opts_.build(*state->builder, len);

    AstraOptions o = opts_.astra;
    o.gpu = gpu;
    // Same §5.5 context prefix as the router's bucket, so the plan
    // store resolves the same workload identity: the stale entry
    // L1-hits (gpu_sig ignores the forced multiplier), its
    // verification mini-batch — measured on the *throttled* device —
    // drifts past store_drift_rel, and optimize() demotes into a
    // warm-started re-exploration whose winner is written back.
    o.context_prefix = opts_.astra.context_prefix + "b" +
                       std::to_string(len) + "|";
    state->session =
        std::make_unique<AstraSession>(state->builder->graph(), o);
    const WirerResult r = state->session->optimize();

    BucketPlan p;
    p.binary = state->session->scheduler().wire_cached(
        r.best_config,
        state->session->tensor_map(r.best_config.strategy), gpu);
    p.config = r.best_config;
    p.config_fnv = config_fingerprint(r.best_config);
    p.baseline_ns = r.best_ns;
    p.retain = std::move(state);
    return p;
}

void
BucketedServer::apply_clock_steps(double t_ns, GpuConfig* gpu,
                                  size_t* next_step,
                                  double* first_drift_ns)
{
    while (*next_step < opts_.clock_schedule.size() &&
           opts_.clock_schedule[*next_step].at_ns <= t_ns) {
        const ClockStep& s = opts_.clock_schedule[*next_step];
        gpu->forced_clock_multiplier = s.clock_multiplier;
        if (*first_drift_ns < 0.0 && s.clock_multiplier > 0.0 &&
            s.clock_multiplier != 1.0)
            *first_drift_ns = t_ns;
        ++*next_step;
    }
}

ServeReport
BucketedServer::serve(const std::vector<ServeRequest>& traffic)
{
    static obs::Counter& c_swaps = obs::counter("serve.swaps");
    static obs::Counter& c_rewires = obs::counter("serve.rewires");
    static obs::Counter& c_detect =
        obs::counter("serve.drift_detections");
    static obs::Counter& c_reject = obs::counter("serve.rejected");

    ASTRA_ASSERT(optimized_, "call optimize() first");
    obs::ScopedSpan span(obs::Category::Serve, "serve.loop");

    AdmissionQueue queue(*router_);
    MetricsRecorder metrics;
    ServeReport report;
    report.offered = static_cast<int64_t>(traffic.size());

    // The drift watcher's measurement discipline: same policy family
    // as exploration, but with the MAD outlier gate disarmed — a
    // sustained regression is exactly the signal the watcher exists to
    // see, not noise to reject.
    MeasurementPolicy watch_policy = opts_.astra.measurement;
    watch_policy.outlier_mad_k = 0.0;
    ProfileIndex watch(watch_policy);
    const double drift_rel =
        opts_.watcher.drift_rel > 0.0
            ? opts_.watcher.drift_rel
            : opts_.astra.measurement.store_drift_rel;

    GpuConfig gpu = opts_.astra.gpu;
    std::vector<RewireInflight> inflight(slots_.size());

    double now_ns = 0.0;
    size_t next_arrival = 0;
    size_t next_step = 0;
    double first_drift_ns = -1.0;
    int64_t served_total = 0;
    int64_t served_at_drift = -1;
    int64_t detect_budget = -1;

    const auto admit_due = [&] {
        while (next_arrival < traffic.size() &&
               traffic[next_arrival].arrival_ns <= now_ns) {
            queue.admit(traffic[next_arrival]);
            ++next_arrival;
        }
    };

    while (next_arrival < traffic.size() || !queue.empty()) {
        admit_due();
        if (queue.empty()) {
            // Strict-overflow admission may have rejected everything
            // that was left, so re-check before indexing the trace.
            if (next_arrival >= traffic.size())
                break;
            // Open-loop idle: jump to the next arrival.
            now_ns = std::max(now_ns,
                              traffic[next_arrival].arrival_ns);
            continue;
        }

        const int b = queue.most_urgent_bucket();
        BucketPlan p = plan(b);

        // Dynamic batching: a partial batch waits for more arrivals
        // while the head request's slack still covers the expected
        // service time plus the patience margin.
        const double launch_by =
            queue.head(b).deadline_ns -
            (1.0 + opts_.batch_wait_frac) * p.baseline_ns;
        if (static_cast<int>(queue.depth(b)) < opts_.max_batch &&
            next_arrival < traffic.size() && now_ns < launch_by &&
            traffic[next_arrival].arrival_ns <= launch_by) {
            now_ns = traffic[next_arrival].arrival_ns;
            continue;
        }

        // ---- batch boundary: drift steps land, pending swaps apply.
        apply_clock_steps(now_ns, &gpu, &next_step, &first_drift_ns);
        if (first_drift_ns >= 0.0 && served_at_drift < 0)
            served_at_drift = served_total;
        auto& infl = inflight[static_cast<size_t>(b)];
        if (infl.active && now_ns >= infl.ready_ns) {
            install(b, std::move(infl.plan));
            infl.active = false;
            ++report.swaps;
            c_swaps.add();
            p = plan(b);
        }

        const std::vector<ServeRequest> batch =
            queue.pop_batch(b, opts_.max_batch);
        const int bucket_len =
            router_->bucket_lengths()[static_cast<size_t>(b)];
        const double start_ns = now_ns;
        DispatchResult dr;
        {
            obs::ScopedSpan batch_span(
                obs::Category::Serve,
                "serve.batch.b" + std::to_string(bucket_len));
            // Replay runs on the snapshot: an install between batches
            // can never mutate the blob a batch is flying on.
            dr = replay_wired(*p.binary, gpu);
        }
        now_ns = start_ns + dr.total_ns;

        int64_t real_tokens = 0;
        for (const ServeRequest& r : batch)
            real_tokens += r.length;
        metrics.batch(static_cast<int>(batch.size()), opts_.max_batch,
                      real_tokens, bucket_len);
        for (const ServeRequest& r : batch) {
            metrics.complete(now_ns - r.arrival_ns,
                             now_ns > r.deadline_ns);
            ++served_total;
        }
        if (opts_.record_batches) {
            BatchRecord rec;
            rec.bucket = b;
            rec.size = static_cast<int>(batch.size());
            rec.start_ns = start_ns;
            rec.end_ns = now_ns;
            rec.plan_epoch = p.epoch;
            rec.config_fnv = p.config_fnv;
            report.batch_log.push_back(rec);
        }

        if (!opts_.watcher.enabled)
            continue;

        // Watcher: fold the batch time into an install-epoch-mangled
        // key (key mangling *is* the invalidation — post-swap samples
        // can never alias a stale window) and compare the tail median
        // against the plan's install-time baseline.
        const std::string key = "serve|b" + std::to_string(bucket_len) +
                                "|e" + std::to_string(p.epoch);
        watch.record(key, dr.total_ns);
        if (infl.active)
            continue;  // a re-wire is already in flight for this bucket
        const ProfileStats* stats = watch.stats(key);
        if (stats == nullptr ||
            static_cast<int>(stats->window().size()) <
                opts_.watcher.min_window)
            continue;
        const double med =
            median_of_tail(stats->window(), opts_.watcher.min_window);
        if (med <= (1.0 + drift_rel) * p.baseline_ns)
            continue;

        ++report.drift_detections;
        c_detect.add();
        if (detect_budget < 0 && served_at_drift >= 0)
            detect_budget = served_total - served_at_drift;
        // Off-path re-wire on the *current* device configuration; the
        // blob installs at the first batch boundary past the simulated
        // re-wire latency. Until then this bucket keeps serving on
        // the old plan — nothing queued is dropped.
        infl.plan = rewire(b, gpu);
        infl.active = true;
        infl.ready_ns = now_ns + opts_.rewire_latency_ns;
        ++report.rewires;
        c_rewires.add();
    }

    report.admitted = queue.admitted();
    report.rejected = queue.rejected();
    c_reject.add(report.rejected);
    report.makespan_ns = now_ns;
    report.detection_request_budget = detect_budget;
    metrics.finalize(&report);
    report.dropped = report.admitted - report.served;
    return report;
}

}  // namespace astra::serve
