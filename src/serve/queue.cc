#include "serve/queue.h"

#include <stdexcept>

#include "support/logging.h"

namespace astra::serve {

AdmissionQueue::AdmissionQueue(const BucketedAstra& router,
                               size_t capacity, QueuePolicy policy)
    : router_(&router),
      queues_(static_cast<size_t>(router.num_buckets())),
      capacity_(capacity),
      policy_(policy)
{
}

bool
AdmissionQueue::admit(const ServeRequest& r)
{
    return admit_bounded(r).admitted;
}

AdmitResult
AdmissionQueue::admit_bounded(const ServeRequest& r)
{
    AdmitResult out;
    int bucket = -1;
    try {
        bucket = router_->bucket_for(r.length);
    } catch (const std::out_of_range&) {
        // Strict overflow: the router refuses to truncate. Refusal is a
        // per-request outcome here, not a job abort.
        ++rejected_;
        return out;
    }
    auto& q = queues_[static_cast<size_t>(bucket)];
    if (capacity_ > 0 && q.size() >= capacity_) {
        ++overflowed_;
        if (policy_ == QueuePolicy::FifoOverflow) {
            // Tail-drop: the arrival loses, whatever its slack.
            return out;
        }
        // EdfShed: the latest deadline in {queue ∪ arrival} loses.
        size_t worst = q.size();  // sentinel: the arrival itself
        double worst_deadline = r.deadline_ns;
        for (size_t i = 0; i < q.size(); ++i) {
            if (q[i].deadline_ns > worst_deadline) {
                worst = i;
                worst_deadline = q[i].deadline_ns;
            }
        }
        if (worst == q.size())
            return out;  // the arrival is the most hopeless: reject it
        out.evicted = true;
        out.victim = q[worst];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(worst));
        // Fall through: the arrival takes the vacated slot.
    }
    q.push_back(r);
    ++admitted_;
    out.admitted = true;
    return out;
}

void
AdmissionQueue::requeue(const ServeRequest& r)
{
    int bucket = -1;
    try {
        bucket = router_->bucket_for(r.length);
    } catch (const std::out_of_range&) {
        ASTRA_ASSERT(false && "requeue of a never-admissible request");
        return;
    }
    // Front of the queue (it is the oldest work we hold), no admitted_
    // bump (it was counted at first admission), no capacity check (its
    // slot was already granted — failover must not turn into a drop).
    queues_[static_cast<size_t>(bucket)].push_front(r);
}

std::vector<ServeRequest>
AdmissionQueue::shed_hopeless(int bucket, double now_ns,
                              double expected_service_ns)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    auto& q = queues_[static_cast<size_t>(bucket)];
    std::vector<ServeRequest> shed;
    for (auto it = q.begin(); it != q.end();) {
        if (it->deadline_ns < now_ns + expected_service_ns) {
            shed.push_back(*it);
            it = q.erase(it);
        } else {
            ++it;
        }
    }
    return shed;
}

bool
AdmissionQueue::empty() const
{
    for (const auto& q : queues_)
        if (!q.empty())
            return false;
    return true;
}

size_t
AdmissionQueue::depth() const
{
    size_t n = 0;
    for (const auto& q : queues_)
        n += q.size();
    return n;
}

size_t
AdmissionQueue::depth(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    return queues_[static_cast<size_t>(bucket)].size();
}

int
AdmissionQueue::most_urgent_bucket() const
{
    int best = -1;
    double best_deadline = 0.0;
    for (size_t b = 0; b < queues_.size(); ++b) {
        if (queues_[b].empty())
            continue;
        const double d = queues_[b].front().deadline_ns;
        if (best < 0 || d < best_deadline) {
            best = static_cast<int>(b);
            best_deadline = d;
        }
    }
    return best;
}

const ServeRequest&
AdmissionQueue::head(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    ASTRA_ASSERT(!queues_[static_cast<size_t>(bucket)].empty());
    return queues_[static_cast<size_t>(bucket)].front();
}

std::vector<ServeRequest>
AdmissionQueue::pop_batch(int bucket, int max_batch)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    ASTRA_ASSERT(max_batch > 0);
    auto& q = queues_[static_cast<size_t>(bucket)];
    std::vector<ServeRequest> out;
    while (!q.empty() && static_cast<int>(out.size()) < max_batch) {
        out.push_back(q.front());
        q.pop_front();
    }
    return out;
}

}  // namespace astra::serve
