#include "serve/queue.h"

#include <stdexcept>

#include "support/logging.h"

namespace astra::serve {

AdmissionQueue::AdmissionQueue(const BucketedAstra& router)
    : router_(&router),
      queues_(static_cast<size_t>(router.num_buckets()))
{
}

bool
AdmissionQueue::admit(const ServeRequest& r)
{
    int bucket = -1;
    try {
        bucket = router_->bucket_for(r.length);
    } catch (const std::out_of_range&) {
        // Strict overflow: the router refuses to truncate. Refusal is a
        // per-request outcome here, not a job abort.
        ++rejected_;
        return false;
    }
    queues_[static_cast<size_t>(bucket)].push_back(r);
    ++admitted_;
    return true;
}

bool
AdmissionQueue::empty() const
{
    for (const auto& q : queues_)
        if (!q.empty())
            return false;
    return true;
}

size_t
AdmissionQueue::depth() const
{
    size_t n = 0;
    for (const auto& q : queues_)
        n += q.size();
    return n;
}

size_t
AdmissionQueue::depth(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    return queues_[static_cast<size_t>(bucket)].size();
}

int
AdmissionQueue::most_urgent_bucket() const
{
    int best = -1;
    double best_deadline = 0.0;
    for (size_t b = 0; b < queues_.size(); ++b) {
        if (queues_[b].empty())
            continue;
        const double d = queues_[b].front().deadline_ns;
        if (best < 0 || d < best_deadline) {
            best = static_cast<int>(b);
            best_deadline = d;
        }
    }
    return best;
}

const ServeRequest&
AdmissionQueue::head(int bucket) const
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    ASTRA_ASSERT(!queues_[static_cast<size_t>(bucket)].empty());
    return queues_[static_cast<size_t>(bucket)].front();
}

std::vector<ServeRequest>
AdmissionQueue::pop_batch(int bucket, int max_batch)
{
    ASTRA_ASSERT(bucket >= 0 &&
                 bucket < static_cast<int>(queues_.size()));
    ASTRA_ASSERT(max_batch > 0);
    auto& q = queues_[static_cast<size_t>(bucket)];
    std::vector<ServeRequest> out;
    while (!q.empty() && static_cast<int>(out.size()) < max_batch) {
        out.push_back(q.front());
        q.pop_front();
    }
    return out;
}

}  // namespace astra::serve
