/**
 * @file
 * Deadline-aware admission queue with dynamic batching.
 *
 * Serving-side counterpart of the paper's §5.5 bucketing: each admitted
 * request is routed through BucketedAstra::bucket_for to the smallest
 * covering bucket and queued there; the dispatch policy then forms
 * per-bucket mini-batches, trading batching efficiency (fuller batches
 * amortize the padded graph over more requests) against deadline risk
 * (waiting for stragglers burns the head request's slack).
 *
 * Overflow policy is the router's: with the router in strict overflow
 * mode, a request longer than the largest bucket is *rejected at
 * admission* (tallied, visible in the report) instead of silently
 * truncated — on a serving path, a refused request is honest and a
 * truncated answer is not. In clamping mode the request is admitted
 * into the last bucket and the router's overflow tally records the
 * truncation exposure.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/bucketed.h"
#include "serve/traffic.h"

namespace astra::serve {

/** Per-bucket FIFO queues behind one admission decision. */
class AdmissionQueue
{
  public:
    /**
     * @param router the bucketed sessions whose bucket_for routes every
     *        admission; must outlive the queue. Its strict-overflow
     *        mode decides reject-vs-clamp.
     */
    explicit AdmissionQueue(const BucketedAstra& router);

    /**
     * Route and enqueue one request. Returns false (and tallies the
     * rejection) when the router's strict overflow mode refuses the
     * length.
     */
    bool admit(const ServeRequest& r);

    bool empty() const;

    /** Queued requests across all buckets. */
    size_t depth() const;

    size_t depth(int bucket) const;

    /**
     * Bucket whose head request has the earliest deadline — the one a
     * deadline-aware dispatcher should consider launching next. Ties
     * break to the smaller bucket (less padding). -1 when all queues
     * are empty.
     */
    int most_urgent_bucket() const;

    /** Head (oldest) request of a non-empty bucket queue. */
    const ServeRequest& head(int bucket) const;

    /** Dequeue up to max_batch requests from one bucket, FIFO order. */
    std::vector<ServeRequest> pop_batch(int bucket, int max_batch);

    /** Requests refused by strict overflow since construction. */
    int64_t rejected() const { return rejected_; }

    /** Requests admitted since construction. */
    int64_t admitted() const { return admitted_; }

  private:
    const BucketedAstra* router_;
    std::vector<std::deque<ServeRequest>> queues_;
    int64_t rejected_ = 0;
    int64_t admitted_ = 0;
};

}  // namespace astra::serve
