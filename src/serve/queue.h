/**
 * @file
 * Deadline-aware admission queue with dynamic batching.
 *
 * Serving-side counterpart of the paper's §5.5 bucketing: each admitted
 * request is routed through BucketedAstra::bucket_for to the smallest
 * covering bucket and queued there; the dispatch policy then forms
 * per-bucket mini-batches, trading batching efficiency (fuller batches
 * amortize the padded graph over more requests) against deadline risk
 * (waiting for stragglers burns the head request's slack).
 *
 * Overflow policy is the router's: with the router in strict overflow
 * mode, a request longer than the largest bucket is *rejected at
 * admission* (tallied, visible in the report) instead of silently
 * truncated — on a serving path, a refused request is honest and a
 * truncated answer is not. In clamping mode the request is admitted
 * into the last bucket and the router's overflow tally records the
 * truncation exposure.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/bucketed.h"
#include "serve/traffic.h"

namespace astra::serve {

/** What a bounded queue does when a bucket is full. */
enum class QueuePolicy
{
    /**
     * Reject the arriving request (classic tail-drop). Simple but
     * goodput-blind: it protects whoever queued first, even when the
     * newcomer has far more deadline slack than a doomed head request.
     */
    FifoOverflow,

    /**
     * EDF-aware shedding: evict the queued request with the *latest*
     * deadline to make room (the arriving request may be that victim).
     * Combined with shed_hopeless(), this approximates the
     * goodput-optimal drop rule — capacity goes to the requests that
     * can still meet their deadlines.
     */
    EdfShed,
};

/** Outcome of one admit() under a bounded queue. */
struct AdmitResult
{
    bool admitted = false;

    /** True when a previously-queued victim was evicted to make room. */
    bool evicted = false;

    /** The evicted request (valid when evicted). */
    ServeRequest victim;
};

/** Per-bucket FIFO queues behind one admission decision. */
class AdmissionQueue
{
  public:
    /**
     * @param router the bucketed sessions whose bucket_for routes every
     *        admission; must outlive the queue. Its strict-overflow
     *        mode decides reject-vs-clamp.
     * @param capacity per-bucket queue bound (0 = unbounded).
     * @param policy what to do when a bucket is at capacity.
     */
    explicit AdmissionQueue(const BucketedAstra& router,
                            size_t capacity = 0,
                            QueuePolicy policy =
                                QueuePolicy::FifoOverflow);

    /**
     * Route and enqueue one request. Returns false (and tallies the
     * rejection) when the router's strict overflow mode refuses the
     * length.
     */
    bool admit(const ServeRequest& r);

    /**
     * admit() with full bounded-queue outcome reporting: under
     * EdfShed a full bucket evicts its latest-deadline request (which
     * may be the arrival itself) instead of rejecting the arrival.
     */
    AdmitResult admit_bounded(const ServeRequest& r);

    /**
     * Re-enqueue a request that was already admitted once (failover
     * retry): pushed at the *front* of its bucket so age order is
     * preserved, never counted as a second admission, and exempt from
     * the capacity bound (its slot was already granted).
     */
    void requeue(const ServeRequest& r);

    /**
     * Drop queued requests of one bucket whose deadline can no longer
     * be met even if dispatched immediately (deadline < now_ns +
     * expected_service_ns). Returns the shed requests — the caller
     * owns their accounting.
     */
    std::vector<ServeRequest> shed_hopeless(int bucket, double now_ns,
                                            double expected_service_ns);

    bool empty() const;

    /** Queued requests across all buckets. */
    size_t depth() const;

    size_t depth(int bucket) const;

    /**
     * Bucket whose head request has the earliest deadline — the one a
     * deadline-aware dispatcher should consider launching next. Ties
     * break to the smaller bucket (less padding). -1 when all queues
     * are empty.
     */
    int most_urgent_bucket() const;

    /** Head (oldest) request of a non-empty bucket queue. */
    const ServeRequest& head(int bucket) const;

    /** Dequeue up to max_batch requests from one bucket, FIFO order. */
    std::vector<ServeRequest> pop_batch(int bucket, int max_batch);

    /** Requests refused by strict overflow since construction. */
    int64_t rejected() const { return rejected_; }

    /** Requests admitted since construction. */
    int64_t admitted() const { return admitted_; }

    /** Requests refused or evicted by the capacity bound. */
    int64_t overflowed() const { return overflowed_; }

  private:
    const BucketedAstra* router_;
    std::vector<std::deque<ServeRequest>> queues_;
    size_t capacity_ = 0;  ///< per-bucket bound (0 = unbounded)
    QueuePolicy policy_ = QueuePolicy::FifoOverflow;
    int64_t rejected_ = 0;
    int64_t admitted_ = 0;
    int64_t overflowed_ = 0;
};

}  // namespace astra::serve
