/**
 * @file
 * First-class latency/goodput accounting for the serving loop.
 *
 * Training benches report one number (mini-batch time); serving is
 * judged on a distribution: tail latency against an SLO, goodput
 * (deadline-met requests per second), and the padding tax the bucketed
 * graphs pay for dynamic shapes. This module accumulates those from
 * per-request completions and renders one ServeReport, mirrored into
 * obs counters ("serve.*") so traces and text summaries carry the same
 * story as the bench tables.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.h"

namespace astra::serve {

/** One dispatched serving mini-batch (report log, hot-swap tests). */
struct BatchRecord
{
    int bucket = 0;

    /** Requests in the batch (<= the graph's batch dimension). */
    int size = 0;

    double start_ns = 0.0;
    double end_ns = 0.0;

    /**
     * Install epoch of the wired plan that served the batch: 0 for the
     * initially-wired blob, +1 per hot-swap of that bucket. The
     * hot-swap contract — an in-flight mini-batch finishes on the old
     * blob while the next one runs the new config — is asserted over
     * this field.
     */
    int plan_epoch = 0;

    /** FNV-1a of the serving config (bit-identity vs offline rewire). */
    uint64_t config_fnv = 0;
};

/** End-to-end outcome of one serve() run. */
struct ServeReport
{
    // ---- request accounting ------------------------------------------
    int64_t offered = 0;    ///< requests in the generated trace
    int64_t admitted = 0;   ///< routed into a bucket queue
    int64_t rejected = 0;   ///< refused by strict overflow
    int64_t served = 0;     ///< completed (served + rejected == offered)
    int64_t dropped = 0;    ///< admitted but never served (must be 0)
    int64_t deadline_misses = 0;

    // ---- latency distribution (arrival -> completion, ns) ------------
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
    double mean_ns = 0.0;
    double max_ns = 0.0;

    /** Completed-request latency samples behind the quantiles. */
    int64_t latency_samples = 0;

    /**
     * Honest-quantile flags: nearest-rank p95/p99 need at least 20/100
     * samples (ceil(1/(1-p))) before the rank is distinguishable from
     * the max. Below that the reported value is clamped to the max and
     * the flag is false, so smoke-run gates can skip tail assertions
     * instead of trusting an extrapolation of one sample.
     */
    bool p95_supported = false;
    bool p99_supported = false;

    // ---- throughput --------------------------------------------------
    int64_t batches = 0;
    double mean_batch_occupancy = 0.0;  ///< requests per dispatched batch

    /** Deadline-met requests per simulated second. */
    double goodput_rps = 0.0;

    /** Completion time of the last batch (ns). */
    double makespan_ns = 0.0;

    /**
     * Padded fraction: executed token slots (batch capacity x bucket
     * length per batch) that carried no real tokens.
     */
    double padded_token_frac = 0.0;

    // ---- liveness under drift ----------------------------------------
    int64_t drift_detections = 0;
    int64_t rewires = 0;
    int64_t swaps = 0;

    /**
     * Requests completed between the first injected clock step and the
     * first drift detection (-1 when no drift was injected or never
     * detected) — the detection budget the serving CI job bounds.
     */
    int64_t detection_request_budget = -1;

    /** Per-batch log (filled when ServeOptions::record_batches). */
    std::vector<BatchRecord> batch_log;

    /** Render the report as an aligned text block (benches, examples). */
    std::string to_text(const std::string& title) const;
};

/** Accumulates per-request / per-batch samples into a ServeReport. */
class MetricsRecorder
{
  public:
    /** Record one completed request. */
    void complete(double latency_ns, bool missed_deadline);

    /**
     * Record one dispatched batch.
     * @param capacity the graph's batch dimension (padding accounting).
     * @param real_tokens sum of true request lengths in the batch.
     * @param bucket_len the bucket's padded length.
     */
    void batch(int size, int capacity, int64_t real_tokens,
               int bucket_len);

    /** Fold the distribution + tallies into a report (and obs). */
    void finalize(ServeReport* report) const;

  private:
    RunningStats latency_;
    int64_t served_ = 0;
    int64_t misses_ = 0;
    int64_t batches_ = 0;
    int64_t batch_requests_ = 0;
    int64_t real_tokens_ = 0;
    int64_t slot_tokens_ = 0;
};

}  // namespace astra::serve
