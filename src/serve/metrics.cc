#include "serve/metrics.h"

#include <cstdio>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra::serve {

namespace {

std::string
line(const char* key, const char* fmt, double v)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-22s ", key);
    std::string out(buf);
    std::snprintf(buf, sizeof(buf), fmt, v);
    out += buf;
    out += '\n';
    return out;
}

}  // namespace

std::string
ServeReport::to_text(const std::string& title) const
{
    std::string s = title + "\n";
    s += line("offered", "%.0f", static_cast<double>(offered));
    s += line("admitted", "%.0f", static_cast<double>(admitted));
    s += line("rejected", "%.0f", static_cast<double>(rejected));
    s += line("served", "%.0f", static_cast<double>(served));
    s += line("dropped", "%.0f", static_cast<double>(dropped));
    s += line("deadline_misses", "%.0f",
              static_cast<double>(deadline_misses));
    s += line("latency_samples", "%.0f",
              static_cast<double>(latency_samples));
    s += line("p50_ms", "%.3f", p50_ns / 1e6);
    s += line(p95_supported ? "p95_ms" : "p95_ms(max-clamped)", "%.3f",
              p95_ns / 1e6);
    s += line(p99_supported ? "p99_ms" : "p99_ms(max-clamped)", "%.3f",
              p99_ns / 1e6);
    s += line("mean_ms", "%.3f", mean_ns / 1e6);
    s += line("max_ms", "%.3f", max_ns / 1e6);
    s += line("batches", "%.0f", static_cast<double>(batches));
    s += line("mean_occupancy", "%.2f", mean_batch_occupancy);
    s += line("goodput_rps", "%.1f", goodput_rps);
    s += line("makespan_ms", "%.3f", makespan_ns / 1e6);
    s += line("padded_token_frac", "%.3f", padded_token_frac);
    s += line("drift_detections", "%.0f",
              static_cast<double>(drift_detections));
    s += line("rewires", "%.0f", static_cast<double>(rewires));
    s += line("swaps", "%.0f", static_cast<double>(swaps));
    s += line("detect_req_budget", "%.0f",
              static_cast<double>(detection_request_budget));
    return s;
}

void
MetricsRecorder::complete(double latency_ns, bool missed_deadline)
{
    static obs::Counter& c_served = obs::counter("serve.requests");
    static obs::Counter& c_miss = obs::counter("serve.deadline_misses");
    latency_.add(latency_ns);
    ++served_;
    c_served.add();
    if (missed_deadline) {
        ++misses_;
        c_miss.add();
    }
}

void
MetricsRecorder::batch(int size, int capacity, int64_t real_tokens,
                       int bucket_len)
{
    static obs::Counter& c_batches = obs::counter("serve.batches");
    static obs::Counter& c_padded = obs::counter("serve.padded_tokens");
    ASTRA_ASSERT(size > 0 && size <= capacity);
    ASTRA_ASSERT(bucket_len > 0);
    ++batches_;
    batch_requests_ += size;
    real_tokens_ += real_tokens;
    const int64_t slots =
        static_cast<int64_t>(capacity) * bucket_len;
    slot_tokens_ += slots;
    c_batches.add();
    c_padded.add(slots - real_tokens);
}

void
MetricsRecorder::finalize(ServeReport* report) const
{
    report->served = served_;
    report->deadline_misses = misses_;
    report->batches = batches_;
    report->latency_samples = served_;
    // Nearest-rank quantiles need ceil(1/(1-p)) samples before the
    // rank is distinguishable from the max; below that, clamp to the
    // max and say so rather than extrapolate a tail from one sample.
    report->p95_supported = served_ >= 20;
    report->p99_supported = served_ >= 100;
    if (served_ > 0) {
        report->p50_ns = latency_.percentile(0.50);
        report->p95_ns = report->p95_supported
                             ? latency_.percentile(0.95)
                             : latency_.max();
        report->p99_ns = report->p99_supported
                             ? latency_.percentile(0.99)
                             : latency_.max();
        report->mean_ns = latency_.mean();
        report->max_ns = latency_.max();
    }
    report->mean_batch_occupancy =
        batches_ > 0 ? static_cast<double>(batch_requests_) /
                           static_cast<double>(batches_)
                     : 0.0;
    report->padded_token_frac =
        slot_tokens_ > 0
            ? 1.0 - static_cast<double>(real_tokens_) /
                        static_cast<double>(slot_tokens_)
            : 0.0;
    if (report->makespan_ns > 0.0)
        report->goodput_rps =
            static_cast<double>(served_ - misses_) * 1e9 /
            report->makespan_ns;
}

}  // namespace astra::serve
