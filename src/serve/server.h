/**
 * @file
 * Online serving loop over bucketed wired plans, with live re-wiring.
 *
 * The offline story (core/bucketed.h) ends with one converged, wired
 * plan per length bucket. This module runs those plans against an
 * open-loop request stream (serve/traffic.h): a deadline-aware
 * admission queue batches requests per bucket, every mini-batch is a
 * replay of the bucket's wired binary (runtime/wired.h) on the
 * *current* device configuration, and latency/goodput are accounted
 * first-class (serve/metrics.h).
 *
 * The interesting part is what happens when the device stops matching
 * the plan. A clock-step schedule injects slow drift (thermal
 * throttling via GpuConfig::forced_clock_multiplier); a per-bucket
 * drift watcher folds every served batch time into a ProfileIndex
 * under an *install-epoch-mangled* key — the same
 * key-mangling-as-invalidation discipline the profile index applies to
 * context changes — and compares the window median against the plan's
 * install-time baseline with the MeasurementPolicy::store_drift_rel
 * tolerance. On detection the server re-wires the bucket off-path
 * (warm-started from the plan store when configured: the store's
 * gpu_sig ignores the forced multiplier, so the stale entry L1-hits,
 * fails drift verification, and demotes into a warm-started
 * re-exploration whose winner is written back), then hot-swaps the new
 * wired blob between mini-batches: an in-flight batch always finishes
 * on the blob it started with, the next batch picks up the new one,
 * and no queued request is dropped.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/bucketed.h"
#include "runtime/wired.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/traffic.h"

namespace astra::serve {

/** Regression detector over served-batch times (one per bucket). */
struct DriftWatcherOptions
{
    /**
     * Arm the watcher. An armed watcher on a calm device is free in
     * simulated time (it observes completed batches, it never adds
     * work), so arming it costs tail latency nothing — the serving
     * bench gates that.
     */
    bool enabled = true;

    /**
     * Served batches per install epoch before the watcher may judge
     * (the median needs a window; mirrors the profile index's
     * outlier_min_window discipline).
     */
    int min_window = 5;

    /**
     * Relative regression that counts as drift: fire when the window
     * median exceeds (1 + drift_rel) x the plan's install-time
     * baseline. <= 0 inherits MeasurementPolicy::store_drift_rel, so
     * online detection and the plan store's offline verification agree
     * on what "stale" means.
     */
    double drift_rel = 0.0;
};

/** One step of the injected clock-drift schedule. */
struct ClockStep
{
    /** Simulated time at which the step takes effect (ns). */
    double at_ns = 0.0;

    /**
     * GpuConfig::forced_clock_multiplier from this point on: 0.7 models
     * thermal throttling to 70% clocks (all kernel times stretch by
     * 1/0.7), 0 returns to the base clock.
     */
    double clock_multiplier = 0.0;
};

/** All knobs of one serving run. */
struct ServeOptions
{
    /** Ascending bucket boundaries (see core/bucketed.h). */
    std::vector<int> bucket_lengths;

    /** Model builder per padded length. */
    LengthGraphFn build;

    /** Per-bucket session options (device, measurement, plan store). */
    AstraOptions astra;

    /**
     * Requests per mini-batch: the padded graph's batch capacity. One
     * replay serves up to this many queued requests of a bucket.
     */
    int max_batch = 4;

    /**
     * Batching patience as a fraction of the expected service time: a
     * partially-full batch launches once the head request's remaining
     * slack falls below (1 + batch_wait_frac) x the bucket's expected
     * batch time; until then the dispatcher waits for more arrivals.
     */
    double batch_wait_frac = 0.25;

    /** Reject (don't truncate) lengths beyond the largest bucket. */
    bool strict_overflow = true;

    DriftWatcherOptions watcher;

    /** Injected drift schedule, ascending by at_ns (empty = calm). */
    std::vector<ClockStep> clock_schedule;

    /**
     * Simulated cost of one off-path re-wire (ns): the new blob
     * installs at the first batch boundary at least this long after
     * detection. Serving continues on the old blob meanwhile — that
     * interval is what the hot-swap tests pin.
     */
    double rewire_latency_ns = 10e6;

    /** Fill ServeReport::batch_log (tests and trace tooling). */
    bool record_batches = false;
};

/**
 * The serving runtime: per-bucket wired plans behind a swap mutex, an
 * admission queue in front, a drift watcher behind.
 */
class BucketedServer
{
  public:
    /** One installed plan revision of a bucket. */
    struct BucketPlan
    {
        std::shared_ptr<const WiredBinary> binary;
        ScheduleConfig config;

        /** FNV-1a of config_to_string(config) (bit-identity checks). */
        uint64_t config_fnv = 0;

        /** Expected batch time when installed (watcher baseline, ns). */
        double baseline_ns = 0.0;

        /** 0 = initial wiring, +1 per hot-swap of this bucket. */
        int epoch = 0;

        /** Keeps the owning session (tensor maps) of the blob alive. */
        std::shared_ptr<void> retain;
    };

    explicit BucketedServer(ServeOptions opts);
    ~BucketedServer();

    BucketedServer(const BucketedServer&) = delete;
    BucketedServer& operator=(const BucketedServer&) = delete;

    /**
     * Offline phase: explore every bucket (BucketedAstra::optimize) and
     * lower each winner into a wired binary. Must run before serve().
     * Returns total exploration mini-batches.
     */
    int64_t optimize();

    /**
     * Drain one generated trace through the serving loop
     * (discrete-event simulation on the device clock). Callable
     * repeatedly; metrics are per call, installed plans persist.
     */
    ServeReport serve(const std::vector<ServeRequest>& traffic);

    /** The routing/exploration sessions (tests). */
    const BucketedAstra& router() const { return *router_; }

    /**
     * Swap-safe snapshot of a bucket's installed plan: replay always
     * runs on a snapshot, so an install between batches never mutates
     * a blob mid-replay.
     */
    BucketPlan plan(int bucket) const;

    /**
     * Install a new plan revision for a bucket (thread-safe; the
     * serving loop picks it up at the next batch boundary). Stamps the
     * next epoch; resets the bucket's drift window by construction
     * (watcher keys embed the epoch).
     */
    void install(int bucket, BucketPlan plan);

    /**
     * Re-wire one bucket against an explicit device configuration:
     * fresh session over the bucket's graph (same §5.5 context prefix,
     * so the plan store sees the same workload identity), full
     * optimize() — which walks the store ladder, fails drift
     * verification on the stale entry, warm-starts, and writes the
     * refreshed winner back — then lowers the winner into a wired
     * blob. Returns the candidate plan; does NOT install it.
     */
    BucketPlan rewire(int bucket, const GpuConfig& gpu) const;

  private:
    struct RewireInflight
    {
        bool active = false;
        double ready_ns = 0.0;  ///< earliest install time
        BucketPlan plan;
    };

    /** Apply schedule steps due at sim time t to the live GpuConfig. */
    void apply_clock_steps(double t_ns, GpuConfig* gpu,
                           size_t* next_step, double* first_drift_ns);

    ServeOptions opts_;
    std::unique_ptr<BucketedAstra> router_;

    mutable std::mutex slots_mu_;
    std::vector<BucketPlan> slots_;

    bool optimized_ = false;
};

/** FNV-1a fingerprint of a schedule configuration's canonical text. */
uint64_t config_fingerprint(const ScheduleConfig& config);

}  // namespace astra::serve
