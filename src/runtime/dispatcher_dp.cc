#include "runtime/dispatcher_dp.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "kernels/cost.h"
#include "obs/obs.h"
#include "runtime/wired.h"
#include "support/logging.h"

namespace astra {

namespace {

/** One gradient flush group: tensors reduced together as one message. */
struct Bucket
{
    std::vector<NodeId> grads;
    int64_t bytes = 0;
    int flush_step = -1;  ///< last producing plan step (plan order)
};

/**
 * Pack gradient tensors into buckets walking the plan in step order —
 * backward produces late-layer gradients first, so early buckets are
 * ready while early-layer backward compute is still running.
 */
std::vector<Bucket>
assign_buckets(const ExecutionPlan& plan, const Graph& graph,
               const std::set<NodeId>& grads, int64_t cap)
{
    std::vector<Bucket> buckets;
    const int num_steps = static_cast<int>(plan.steps.size());
    size_t covered = 0;
    for (int i = 0; i < num_steps; ++i) {
        for (NodeId id : plan.steps[i].nodes) {
            if (!grads.count(id))
                continue;
            ++covered;
            if (buckets.empty() || cap == 0 ||
                buckets.back().bytes >= cap)
                buckets.push_back({});
            Bucket& b = buckets.back();
            b.grads.push_back(id);
            b.bytes += static_cast<int64_t>(graph.node(id).desc.bytes());
            b.flush_step = i;
        }
    }
    ASTRA_ASSERT(covered == grads.size(),
                 "plan covers ", covered, " of ", grads.size(),
                 " gradient nodes");
    return buckets;
}

}  // namespace

std::string
flush_schedule_name(FlushSchedule flush)
{
    return flush == FlushSchedule::Eager ? "eager" : "end";
}

DpResult
dispatch_plan_dp(const ExecutionPlan& plan, const Graph& graph,
                 const TensorMap& tmap, const GpuConfig& cfg,
                 const std::vector<NodeId>& grad_nodes,
                 const DpOptions& opts)
{
    ASTRA_ASSERT(opts.degree >= 1);
    ASTRA_ASSERT(opts.bucket_bytes >= 0);
    const int G = opts.degree;

    const bool obs_on = obs::enabled();
    obs::ScopedSpan dispatch_span(obs::Category::Dispatch,
                                  "dispatch_plan_dp");
    const double obs_anchor = obs_on ? obs::now_ns() : 0.0;

    // Timing-only: the devices run identical shapes (mini-batch
    // predictability), and executing host callbacks on G devices would
    // race on the one shared TensorMap.
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.execute_kernels = false;
    gpu_cfg.collect_trace = true;  // compute/comm split comes from spans

    MultiSim multi(G, gpu_cfg);
    multi.set_straggler_timeout(opts.straggler_timeout_ns);

    // Each device's link endpoint is its own fault domain: derive a
    // per-device comm injector the same way MultiSim salts its devices,
    // so degraded-link draws are seed-stable per (device, transfer) and
    // independent of the devices' kernel-fault sequences.
    std::vector<FaultInjector> comm_faults;
    comm_faults.reserve(static_cast<size_t>(G));
    for (int d = 0; d < G; ++d)
        comm_faults.emplace_back(
            &gpu_cfg.faults,
            fault_mix(gpu_cfg.fault_salt +
                          ClockDomain::kSeedMix * static_cast<uint64_t>(d),
                      0xC0));

    // The plan's compute streams, plus one comm stream per device. The
    // comm stream *is* the device's link endpoint: its FIFO serializes
    // transfers the way the full-duplex ring link does.
    const int comm_stream = plan.num_streams;
    for (int d = 0; d < G; ++d) {
        SimGpu& gpu = multi.device(d);
        for (int s = 1; s < plan.num_streams; ++s)
            gpu.create_stream();
        if (G > 1)
            ASTRA_ASSERT(gpu.create_stream() == comm_stream);
    }

    std::vector<Bucket> buckets;
    if (G > 1) {
        const std::set<NodeId> grad_set(grad_nodes.begin(),
                                        grad_nodes.end());
        buckets = assign_buckets(plan, graph, grad_set, opts.bucket_bytes);
    }
    const int nbuckets = static_cast<int>(buckets.size());
    const int nhops = 2 * (G - 1);  // ring allreduce chunk transfers

    // Ring progress events: ready[d][b*nhops+s] = "device d finished
    // hop s of bucket b"; its mirror on the downstream neighbour d+1 is
    // recv[d+1][b*nhops+s], which that device's hop s+1 waits on.
    std::vector<std::vector<EventId>> ready(static_cast<size_t>(G));
    std::vector<std::vector<EventId>> recv(static_cast<size_t>(G));
    for (int d = 0; d < G; ++d) {
        for (int k = 0; k < nbuckets * nhops; ++k) {
            ready[static_cast<size_t>(d)].push_back(
                multi.device(d).create_event());
            recv[static_cast<size_t>(d)].push_back(
                multi.device(d).create_event());
        }
    }
    for (int d = 0; d < G; ++d) {
        const int dn = (d + 1) % G;
        for (int k = 0; k < nbuckets * nhops; ++k)
            multi.mirror(d, ready[static_cast<size_t>(d)][k], dn,
                         recv[static_cast<size_t>(dn)][k]);
    }

    // Which buckets flush after which plan step (Eager only).
    std::map<int, std::vector<int>> flush_at;
    if (G > 1 && opts.flush == FlushSchedule::Eager)
        for (int b = 0; b < nbuckets; ++b)
            flush_at[buckets[static_cast<size_t>(b)].flush_step]
                .push_back(b);

    // Enqueue one bucket's ring allreduce on a device's comm stream:
    // 2(G-1) chunk transfers, each gated on the upstream neighbour
    // having finished the previous hop (the reduce-scatter/allgather
    // pipeline), the first on the local gradients being ready.
    auto enqueue_ring = [&](int d, int b, EventId gate) {
        SimGpu& gpu = multi.device(d);
        const double chunk_bytes =
            static_cast<double>(buckets[static_cast<size_t>(b)].bytes) /
            static_cast<double>(G);
        const KernelCost cost = comm_transfer_cost(
            chunk_bytes, opts.link.link_gbps, opts.link.latency_us);
        for (int s = 0; s < nhops; ++s) {
            const int k = b * nhops + s;
            if (s == 0) {
                if (gate >= 0)
                    gpu.wait_event(comm_stream, gate);
            } else {
                gpu.wait_event(comm_stream,
                               recv[static_cast<size_t>(d)]
                                   [static_cast<size_t>(k - 1)]);
            }
            KernelDesc kd;
            kd.name = "comm.b" + std::to_string(b) + ".s" +
                      std::to_string(s);
            kd.blocks = 0;  // copy-engine work, holds no SMs
            kd.setup_ns =
                cost.setup_ns * comm_faults[static_cast<size_t>(d)].on_comm();
            gpu.launch(comm_stream, std::move(kd));
            gpu.record_event(comm_stream,
                             ready[static_cast<size_t>(d)]
                                  [static_cast<size_t>(k)]);
        }
    };

    // One dependency analysis for all G devices: compile the plan's
    // command stream once and replay it onto every device.
    const auto program = std::make_shared<const WiredProgram>(
        compile_plan(plan, graph, /*profiling=*/false));

    for (int d = 0; d < G; ++d) {
        SimGpu& gpu = multi.device(d);
        PlanEnqueuer enq(program, plan, graph, tmap, gpu_cfg, gpu);
        PlanEnqueuer::StepHook hook;
        if (!flush_at.empty()) {
            // The comm commands enqueue through the same host pipeline
            // as compute launches, so per-bucket flush cost (2(G-1)
            // launches + events) delays later compute launches exactly
            // like a DDP autograd hook — per-tensor bucketing pays it
            // once per gradient.
            hook = [&, d](int i) {
                const auto it = flush_at.find(i);
                if (it == flush_at.end())
                    return;
                const EventId gate = gpu.create_event();
                gpu.record_event(plan.steps[static_cast<size_t>(i)].stream,
                                 gate);
                for (int b : it->second)
                    enqueue_ring(d, b, gate);
            };
        }
        enq.enqueue(hook);

        if (G > 1 && opts.flush == FlushSchedule::EndOfStep) {
            // Serial baseline: the comm stream waits for every compute
            // stream to drain before the first transfer starts.
            for (int s = 0; s < plan.num_streams; ++s) {
                const EventId gate = gpu.create_event();
                gpu.record_event(s, gate);
                gpu.wait_event(comm_stream, gate);
            }
            for (int b = 0; b < nbuckets; ++b)
                enqueue_ring(d, b, /*gate=*/-1);
        }
    }

    multi.run();

    DpResult result;
    result.step_ns = multi.now_ns();
    double compute_end = 0.0;
    double comm_sum = 0.0;
    for (const TraceSpan& s : multi.device(0).trace()) {
        if (G > 1 && s.stream == comm_stream)
            comm_sum += s.end_ns - s.start_ns;
        else
            compute_end = std::max(compute_end, s.end_ns);
    }
    result.compute_ns = compute_end;
    result.comm_ns = comm_sum;
    result.overlap_ns =
        std::max(0.0, result.compute_ns + result.comm_ns - result.step_ns);
    for (const Bucket& b : buckets)
        result.comm_bytes += static_cast<double>(nhops) *
                             static_cast<double>(b.bytes) /
                             static_cast<double>(G);
    result.num_buckets = nbuckets;

    if (obs_on) {
        obs::add_kernel_spans(multi.device(0).trace(), obs_anchor);
        static obs::Counter& bytes = obs::counter("comm.bytes");
        bytes.add(static_cast<int64_t>(result.comm_bytes));
        static obs::Counter& transfers = obs::counter("comm.transfers");
        transfers.add(static_cast<int64_t>(nbuckets) * nhops);
        static obs::Counter& overlap = obs::counter("comm.overlap_ns");
        overlap.add(static_cast<int64_t>(result.overlap_ns));
        obs::observe("dispatch.dp_step_ns", result.step_ns);
    }

    result.stragglers = multi.straggler_events();
    if (obs_on && result.stragglers > 0) {
        static obs::Counter& stragglers = obs::counter("comm.stragglers");
        stragglers.add(result.stragglers);
    }

    // Persistent-straggler degradation: when the overlapped pipeline
    // kept tripping the watchdog — a slow link stalls all 2(G-1) hops
    // of every in-flight bucket — re-dispatch with the serial schedule,
    // whose single compute/comm rendezvous bounds the blast radius of
    // one bad link to its own transfers.
    if (G > 1 && opts.flush == FlushSchedule::Eager &&
        opts.serial_fallback && opts.straggler_timeout_ns > 0.0 &&
        result.stragglers >= opts.straggler_fallback_threshold) {
        DpOptions serial = opts;
        serial.flush = FlushSchedule::EndOfStep;
        serial.serial_fallback = false;
        DpResult fb =
            dispatch_plan_dp(plan, graph, tmap, cfg, grad_nodes, serial);
        fb.stragglers += result.stragglers;
        fb.fell_back_serial = true;
        if (obs_on)
            obs::counter("comm.serial_fallbacks").add();
        return fb;
    }
    return result;
}

}  // namespace astra
