#include "runtime/dispatcher.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "runtime/wired.h"
#include "support/logging.h"

namespace astra {

PlanEnqueuer::PlanEnqueuer(const ExecutionPlan& plan, const Graph& graph,
                           const TensorMap& tmap, const GpuConfig& cfg,
                           SimGpu& gpu, bool profiling)
    : plan_(plan), graph_(graph), tmap_(tmap), cfg_(cfg), gpu_(gpu),
      program_(std::make_shared<const WiredProgram>(
          compile_plan(plan, graph, profiling)))
{
}

PlanEnqueuer::PlanEnqueuer(std::shared_ptr<const WiredProgram> program,
                           const ExecutionPlan& plan, const Graph& graph,
                           const TensorMap& tmap, const GpuConfig& cfg,
                           SimGpu& gpu)
    : plan_(plan), graph_(graph), tmap_(tmap), cfg_(cfg), gpu_(gpu),
      program_(std::move(program))
{
    ASTRA_ASSERT(program_, "PlanEnqueuer needs a compiled program");
}

PlanEnqueuer::~PlanEnqueuer() = default;

void
PlanEnqueuer::enqueue(const StepHook& after_step)
{
    const WiredProgram& prog = *program_;
    // Event creation carries no device time, so allocating every slot
    // up front is timing-identical to the historical lazy creation.
    events_.resize(static_cast<size_t>(prog.num_events));
    for (int32_t e = 0; e < prog.num_events; ++e)
        events_[static_cast<size_t>(e)] = gpu_.create_event();

    const int num_steps = static_cast<int>(plan_.steps.size());
    for (int i = 0; i < num_steps; ++i) {
        const int32_t begin = prog.step_begin[static_cast<size_t>(i)];
        const int32_t end = prog.step_begin[static_cast<size_t>(i) + 1];
        for (int32_t c = begin; c < end; ++c) {
            const WiredCmd& cmd = prog.cmds[static_cast<size_t>(c)];
            switch (cmd.op) {
            case WiredOp::Launch:
                // Kernels are built at enqueue time: this generic path
                // stays the honest baseline the compiled replay
                // (runtime/wired.h, prebuilt descriptors) is measured
                // against.
                gpu_.launch(cmd.stream,
                            build_step_kernel(
                                plan_.steps[static_cast<size_t>(cmd.arg)],
                                graph_, tmap_, cfg_));
                break;
            case WiredOp::Record:
                gpu_.record_event(cmd.stream,
                                  events_[static_cast<size_t>(cmd.arg)]);
                break;
            case WiredOp::Wait:
                gpu_.wait_event(cmd.stream,
                                events_[static_cast<size_t>(cmd.arg)]);
                break;
            }
        }
        if (after_step && !prog.is_barrier[static_cast<size_t>(i)])
            after_step(i);
    }
}

void
PlanEnqueuer::collect_profiles(DispatchResult& result) const
{
    collect_wired_profiles(*program_, events_, gpu_, result);
}

DispatchResult
run_dispatch_transaction(const GpuConfig& cfg, int num_streams,
                         const std::function<void(SimGpu&)>& enqueue,
                         std::unique_ptr<SimGpu>* gpu_out)
{
    GpuConfig gpu_cfg = cfg;

    // Autoboost is physical-device state: it does not reset between
    // mini-batches, so successive dispatches must measure at different
    // clocks (the §7 repeatability violation). Each dispatch gets a
    // fresh device here, so the cross-dispatch drift is modeled by
    // salting the jitter seed with a process-wide dispatch counter —
    // unless the caller forces the multiplier, in which case it owns
    // the draw sequence (ClockDomain) and ordering must not leak in.
    if (gpu_cfg.autoboost && gpu_cfg.forced_clock_multiplier <= 0.0) {
        static std::atomic<uint64_t> dispatch_counter{0};
        gpu_cfg.autoboost_seed +=
            ClockDomain::kSeedMix *
            dispatch_counter.fetch_add(1, std::memory_order_relaxed);
    }

    // A dispatch's faults must be a pure function of its salt so the
    // parallel wirer stays bit-identical: callers that care (the wirer)
    // pre-assign salts; everyone else gets a process-wide counter.
    const bool fault_armed = !gpu_cfg.faults.empty();
    if (fault_armed && gpu_cfg.fault_salt == 0) {
        static std::atomic<uint64_t> fault_counter{1};
        gpu_cfg.fault_salt =
            fault_counter.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t base_salt = gpu_cfg.fault_salt;
    const int max_attempts =
        fault_armed ? gpu_cfg.faults.max_retries + 1 : 1;

    DispatchResult result;
    std::unique_ptr<SimGpu> gpu;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        gpu_cfg.fault_salt =
            attempt == 0
                ? base_salt
                : fault_mix(base_salt, static_cast<uint64_t>(attempt));
        gpu = std::make_unique<SimGpu>(gpu_cfg);
        for (int s = 1; s < num_streams; ++s)
            gpu->create_stream();
        const auto host_start = std::chrono::steady_clock::now();
        enqueue(*gpu);
        result.host_enqueue_ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - host_start)
                .count());
        gpu->synchronize();
        result.faults_seen += gpu->stats().faults_injected;
        result.straggler_events += gpu->stats().straggler_events;
        if (gpu->stats().faults_injected == 0)
            break;
        // Abort-and-replay: the replay re-executes the full plan over
        // the same TensorMap, so a clean attempt restores every tensor.
        // The backoff is simulated (reported, not slept) so tests and
        // benchmarks measure the policy, not the wall clock.
        ++result.fault_attempts;
        result.backoff_ns +=
            gpu_cfg.faults.backoff_us * 1e3 *
            static_cast<double>(1ull << std::min(attempt, 30));
    }
    result.faulted = gpu->stats().faults_injected > 0;

    result.total_ns = gpu->now_ns();
    result.stats = gpu->stats();
    result.clock_multiplier = gpu->clock_multiplier();
    *gpu_out = std::move(gpu);
    return result;
}

DispatchResult
dispatch_plan(const ExecutionPlan& plan, const Graph& graph,
              const TensorMap& tmap, const GpuConfig& cfg)
{
    // When observability is on, collect the device timeline regardless
    // of the caller's setting so kernel spans land on the merged trace
    // (anchored at this dispatch's host time).
    const bool obs_on = obs::enabled();
    obs::ScopedSpan dispatch_span(obs::Category::Dispatch,
                                  "dispatch_plan");
    const double obs_anchor = obs_on ? obs::now_ns() : 0.0;
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.collect_trace = cfg.collect_trace || obs_on;

    std::unique_ptr<SimGpu> gpu;
    std::unique_ptr<PlanEnqueuer> enq;
    DispatchResult result = run_dispatch_transaction(
        gpu_cfg, plan.num_streams,
        [&](SimGpu& g) {
            enq = std::make_unique<PlanEnqueuer>(plan, graph, tmap, cfg,
                                                 g, /*profiling=*/true);
            enq->enqueue();
        },
        &gpu);

    if (cfg.collect_trace)
        result.trace = gpu->trace();
    if (obs_on) {
        obs::add_kernel_spans(gpu->trace(), obs_anchor);
        static obs::Counter& dispatches = obs::counter("dispatch.plans");
        dispatches.add();
        static obs::Counter& kernels =
            obs::counter("dispatch.kernels_launched");
        kernels.add(gpu->stats().kernels_launched);
        obs::observe("dispatch.total_ns", result.total_ns);
        if (result.fault_attempts > 0) {
            static obs::Counter& retries =
                obs::counter("dispatch.fault_retries");
            retries.add(result.fault_attempts);
        }
        if (result.faults_seen > 0) {
            static obs::Counter& faults =
                obs::counter("dispatch.faults_injected");
            faults.add(result.faults_seen);
        }
    }

    enq->collect_profiles(result);
    return result;
}

}  // namespace astra
