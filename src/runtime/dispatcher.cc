#include "runtime/dispatcher.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "support/logging.h"

namespace astra {

PlanEnqueuer::PlanEnqueuer(const ExecutionPlan& plan, const Graph& graph,
                           const TensorMap& tmap, const GpuConfig& cfg,
                           SimGpu& gpu, bool profiling)
    : plan_(plan), graph_(graph), tmap_(tmap), cfg_(cfg), gpu_(gpu),
      profiling_(profiling)
{
    const int num_steps = static_cast<int>(plan.steps.size());

    // Producer step of every covered node.
    producer_.assign(static_cast<size_t>(graph.size()), -1);
    for (int i = 0; i < num_steps; ++i)
        for (NodeId id : plan.steps[i].nodes)
            producer_[static_cast<size_t>(id)] = i;

    // Which steps need a completion event (cross-stream consumers).
    needs_event_.assign(static_cast<size_t>(num_steps), false);
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[i];
        if (step.kind == StepKind::Barrier)
            continue;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                const int p = producer_[static_cast<size_t>(in)];
                if (p == i)
                    continue;  // internal edge of a fused step
                if (p < 0)
                    continue;  // graph source
                ASTRA_ASSERT(p < i, "plan order violates dependencies: "
                             "step ", i, " reads node %", in,
                             " produced by later step ", p);
                if (plan.steps[static_cast<size_t>(p)].stream != step.stream)
                    needs_event_[static_cast<size_t>(p)] = true;
            }
        }
    }

    done_event_.assign(static_cast<size_t>(num_steps), -1);
    start_event_.assign(static_cast<size_t>(num_steps), -1);
    end_event_.assign(static_cast<size_t>(num_steps), -1);
    barrier_events_.assign(static_cast<size_t>(num_steps), {});
    last_barrier_.assign(static_cast<size_t>(num_steps), -1);
}

void
PlanEnqueuer::enqueue(const StepHook& after_step)
{
    const int num_steps = static_cast<int>(plan_.steps.size());
    int current_barrier = -1;
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan_.steps[i];
        last_barrier_[static_cast<size_t>(i)] = current_barrier;

        if (step.kind == StepKind::Barrier) {
            // Every stream records its arrival, then waits on everyone
            // else's arrival: a full cross-stream rendezvous.
            auto& evs = barrier_events_[static_cast<size_t>(i)];
            for (int s = 0; s < plan_.num_streams; ++s) {
                const EventId e = gpu_.create_event();
                gpu_.record_event(s, e);
                evs.push_back(e);
            }
            for (int s = 0; s < plan_.num_streams; ++s)
                for (int t = 0; t < plan_.num_streams; ++t)
                    if (t != s)
                        gpu_.wait_event(s, evs[static_cast<size_t>(t)]);
            current_barrier = i;
            continue;
        }

        ASTRA_ASSERT(step.stream >= 0 && step.stream < plan_.num_streams,
                     "step ", i, " uses stream ", step.stream,
                     " but plan has ", plan_.num_streams);

        // Cross-stream waits for this step's external inputs.
        std::set<int> waited;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph_.node(id).inputs) {
                const int p = producer_[static_cast<size_t>(in)];
                if (p < 0 || p == i)
                    continue;
                const PlanStep& prod = plan_.steps[static_cast<size_t>(p)];
                if (prod.stream != step.stream && !waited.count(p)) {
                    ASTRA_ASSERT(done_event_[static_cast<size_t>(p)] >= 0);
                    gpu_.wait_event(step.stream,
                                    done_event_[static_cast<size_t>(p)]);
                    waited.insert(p);
                }
            }
        }

        if (profiling_ && step.profile && !step.epoch_metric) {
            start_event_[static_cast<size_t>(i)] = gpu_.create_event();
            gpu_.record_event(step.stream,
                              start_event_[static_cast<size_t>(i)]);
        }

        gpu_.launch(step.stream,
                    build_step_kernel(step, graph_, tmap_, cfg_));

        if (needs_event_[static_cast<size_t>(i)]) {
            done_event_[static_cast<size_t>(i)] = gpu_.create_event();
            gpu_.record_event(step.stream,
                              done_event_[static_cast<size_t>(i)]);
        }
        if (profiling_ && step.profile) {
            end_event_[static_cast<size_t>(i)] = gpu_.create_event();
            gpu_.record_event(step.stream,
                              end_event_[static_cast<size_t>(i)]);
        }

        if (after_step)
            after_step(i);
    }
}

void
PlanEnqueuer::collect_profiles(DispatchResult& result) const
{
    if (!profiling_)
        return;
    const int num_steps = static_cast<int>(plan_.steps.size());
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan_.steps[i];
        if (!step.profile)
            continue;
        const EventId end = end_event_[static_cast<size_t>(i)];
        if (step.epoch_metric) {
            // Time from the preceding barrier (stream-history reset
            // point) to this step's completion, maximized over the key.
            const int b = last_barrier_[static_cast<size_t>(i)];
            double base = 0.0;
            if (b >= 0)
                for (EventId e : barrier_events_[static_cast<size_t>(b)])
                    base = std::max(base, gpu_.event_time_ns(e));
            const double v = gpu_.event_time_ns(end) - base;
            auto [it, inserted] =
                result.profile_ns.emplace(step.profile_key, v);
            if (!inserted)
                it->second = std::max(it->second, v);
        } else {
            const EventId start = start_event_[static_cast<size_t>(i)];
            result.profile_ns[step.profile_key] +=
                gpu_.elapsed_ns(start, end);
        }
    }
}

DispatchResult
dispatch_plan(const ExecutionPlan& plan, const Graph& graph,
              const TensorMap& tmap, const GpuConfig& cfg)
{
    // When observability is on, collect the device timeline regardless
    // of the caller's setting so kernel spans land on the merged trace
    // (anchored at this dispatch's host time).
    const bool obs_on = obs::enabled();
    obs::ScopedSpan dispatch_span(obs::Category::Dispatch,
                                  "dispatch_plan");
    const double obs_anchor = obs_on ? obs::now_ns() : 0.0;
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.collect_trace = cfg.collect_trace || obs_on;

    // Autoboost is physical-device state: it does not reset between
    // mini-batches, so successive dispatches must measure at different
    // clocks (the §7 repeatability violation). Each dispatch gets a
    // fresh device here, so the cross-dispatch drift is modeled by
    // salting the jitter seed with a process-wide dispatch counter —
    // unless the caller forces the multiplier, in which case it owns
    // the draw sequence (ClockDomain) and ordering must not leak in.
    if (gpu_cfg.autoboost && gpu_cfg.forced_clock_multiplier <= 0.0) {
        static std::atomic<uint64_t> dispatch_counter{0};
        gpu_cfg.autoboost_seed +=
            ClockDomain::kSeedMix *
            dispatch_counter.fetch_add(1, std::memory_order_relaxed);
    }

    // A dispatch's faults must be a pure function of its salt so the
    // parallel wirer stays bit-identical: callers that care (the wirer)
    // pre-assign salts; everyone else gets a process-wide counter.
    const bool fault_armed = !gpu_cfg.faults.empty();
    if (fault_armed && gpu_cfg.fault_salt == 0) {
        static std::atomic<uint64_t> fault_counter{1};
        gpu_cfg.fault_salt =
            fault_counter.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t base_salt = gpu_cfg.fault_salt;
    const int max_attempts =
        fault_armed ? gpu_cfg.faults.max_retries + 1 : 1;

    DispatchResult result;
    std::unique_ptr<SimGpu> gpu;
    std::unique_ptr<PlanEnqueuer> enq;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        gpu_cfg.fault_salt =
            attempt == 0
                ? base_salt
                : fault_mix(base_salt, static_cast<uint64_t>(attempt));
        gpu = std::make_unique<SimGpu>(gpu_cfg);
        for (int s = 1; s < plan.num_streams; ++s)
            gpu->create_stream();
        enq = std::make_unique<PlanEnqueuer>(plan, graph, tmap, cfg,
                                             *gpu, /*profiling=*/true);
        enq->enqueue();
        gpu->synchronize();
        result.faults_seen += gpu->stats().faults_injected;
        result.straggler_events += gpu->stats().straggler_events;
        if (gpu->stats().faults_injected == 0)
            break;
        // Abort-and-replay: the replay re-executes the full plan over
        // the same TensorMap, so a clean attempt restores every tensor.
        // The backoff is simulated (reported, not slept) so tests and
        // benchmarks measure the policy, not the wall clock.
        ++result.fault_attempts;
        result.backoff_ns +=
            gpu_cfg.faults.backoff_us * 1e3 *
            static_cast<double>(1ull << std::min(attempt, 30));
    }
    result.faulted = gpu->stats().faults_injected > 0;

    result.total_ns = gpu->now_ns();
    result.stats = gpu->stats();
    result.clock_multiplier = gpu->clock_multiplier();
    if (cfg.collect_trace)
        result.trace = gpu->trace();
    if (obs_on) {
        obs::add_kernel_spans(gpu->trace(), obs_anchor);
        static obs::Counter& dispatches = obs::counter("dispatch.plans");
        dispatches.add();
        static obs::Counter& kernels =
            obs::counter("dispatch.kernels_launched");
        kernels.add(gpu->stats().kernels_launched);
        obs::observe("dispatch.total_ns", result.total_ns);
        if (result.fault_attempts > 0) {
            static obs::Counter& retries =
                obs::counter("dispatch.fault_retries");
            retries.add(result.fault_attempts);
        }
        if (result.faults_seen > 0) {
            static obs::Counter& faults =
                obs::counter("dispatch.faults_injected");
            faults.add(result.faults_seen);
        }
    }

    enq->collect_profiles(result);
    return result;
}

}  // namespace astra
