#include "runtime/dispatcher.h"

#include <set>
#include <vector>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "support/logging.h"

namespace astra {

DispatchResult
dispatch_plan(const ExecutionPlan& plan, const Graph& graph,
              const TensorMap& tmap, const GpuConfig& cfg)
{
    // When observability is on, collect the device timeline regardless
    // of the caller's setting so kernel spans land on the merged trace
    // (anchored at this dispatch's host time).
    const bool obs_on = obs::enabled();
    obs::ScopedSpan dispatch_span(obs::Category::Dispatch,
                                  "dispatch_plan");
    const double obs_anchor = obs_on ? obs::now_ns() : 0.0;
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.collect_trace = cfg.collect_trace || obs_on;

    SimGpu gpu(gpu_cfg);
    for (int s = 1; s < plan.num_streams; ++s)
        gpu.create_stream();

    const int num_steps = static_cast<int>(plan.steps.size());

    // Producer step of every covered node.
    std::vector<int> producer(static_cast<size_t>(graph.size()), -1);
    for (int i = 0; i < num_steps; ++i)
        for (NodeId id : plan.steps[i].nodes)
            producer[static_cast<size_t>(id)] = i;

    // Which steps need a completion event (cross-stream consumers).
    std::vector<bool> needs_event(static_cast<size_t>(num_steps), false);
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[i];
        if (step.kind == StepKind::Barrier)
            continue;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                const int p = producer[static_cast<size_t>(in)];
                if (p == i)
                    continue;  // internal edge of a fused step
                if (p < 0)
                    continue;  // graph source
                ASTRA_ASSERT(p < i, "plan order violates dependencies: "
                             "step ", i, " reads node %", in,
                             " produced by later step ", p);
                if (plan.steps[static_cast<size_t>(p)].stream != step.stream)
                    needs_event[static_cast<size_t>(p)] = true;
            }
        }
    }

    std::vector<EventId> done_event(static_cast<size_t>(num_steps), -1);
    std::vector<EventId> start_event(static_cast<size_t>(num_steps), -1);
    std::vector<EventId> end_event(static_cast<size_t>(num_steps), -1);
    // Barrier bookkeeping: per-barrier per-stream arrival events.
    std::vector<std::vector<EventId>> barrier_events(
        static_cast<size_t>(num_steps));
    std::vector<int> last_barrier(static_cast<size_t>(num_steps), -1);

    int current_barrier = -1;
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[i];
        last_barrier[static_cast<size_t>(i)] = current_barrier;

        if (step.kind == StepKind::Barrier) {
            // Every stream records its arrival, then waits on everyone
            // else's arrival: a full cross-stream rendezvous.
            auto& evs = barrier_events[static_cast<size_t>(i)];
            for (int s = 0; s < plan.num_streams; ++s) {
                const EventId e = gpu.create_event();
                gpu.record_event(s, e);
                evs.push_back(e);
            }
            for (int s = 0; s < plan.num_streams; ++s)
                for (int t = 0; t < plan.num_streams; ++t)
                    if (t != s)
                        gpu.wait_event(s, evs[static_cast<size_t>(t)]);
            current_barrier = i;
            continue;
        }

        ASTRA_ASSERT(step.stream >= 0 && step.stream < plan.num_streams,
                     "step ", i, " uses stream ", step.stream,
                     " but plan has ", plan.num_streams);

        // Cross-stream waits for this step's external inputs.
        std::set<int> waited;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                const int p = producer[static_cast<size_t>(in)];
                if (p < 0 || p == i)
                    continue;
                const PlanStep& prod = plan.steps[static_cast<size_t>(p)];
                if (prod.stream != step.stream && !waited.count(p)) {
                    ASTRA_ASSERT(done_event[static_cast<size_t>(p)] >= 0);
                    gpu.wait_event(step.stream,
                                   done_event[static_cast<size_t>(p)]);
                    waited.insert(p);
                }
            }
        }

        if (step.profile && !step.epoch_metric) {
            start_event[static_cast<size_t>(i)] = gpu.create_event();
            gpu.record_event(step.stream,
                             start_event[static_cast<size_t>(i)]);
        }

        gpu.launch(step.stream, build_step_kernel(step, graph, tmap, cfg));

        if (needs_event[static_cast<size_t>(i)]) {
            done_event[static_cast<size_t>(i)] = gpu.create_event();
            gpu.record_event(step.stream,
                             done_event[static_cast<size_t>(i)]);
        }
        if (step.profile) {
            end_event[static_cast<size_t>(i)] = gpu.create_event();
            gpu.record_event(step.stream, end_event[static_cast<size_t>(i)]);
        }
    }

    gpu.synchronize();

    DispatchResult result;
    result.total_ns = gpu.now_ns();
    result.stats = gpu.stats();
    result.clock_multiplier = gpu.clock_multiplier();
    if (cfg.collect_trace)
        result.trace = gpu.trace();
    if (obs_on) {
        obs::add_kernel_spans(gpu.trace(), obs_anchor);
        static obs::Counter& dispatches = obs::counter("dispatch.plans");
        dispatches.add();
        static obs::Counter& kernels =
            obs::counter("dispatch.kernels_launched");
        kernels.add(gpu.stats().kernels_launched);
        obs::observe("dispatch.total_ns", result.total_ns);
    }

    // Collect fine-grained measurements.
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[i];
        if (!step.profile)
            continue;
        const EventId end = end_event[static_cast<size_t>(i)];
        if (step.epoch_metric) {
            // Time from the preceding barrier (stream-history reset
            // point) to this step's completion, maximized over the key.
            const int b = last_barrier[static_cast<size_t>(i)];
            double base = 0.0;
            if (b >= 0)
                for (EventId e : barrier_events[static_cast<size_t>(b)])
                    base = std::max(base, gpu.event_time_ns(e));
            const double v = gpu.event_time_ns(end) - base;
            auto [it, inserted] =
                result.profile_ns.emplace(step.profile_key, v);
            if (!inserted)
                it->second = std::max(it->second, v);
        } else {
            const EventId start = start_event[static_cast<size_t>(i)];
            result.profile_ns[step.profile_key] +=
                gpu.elapsed_ns(start, end);
        }
    }
    return result;
}

}  // namespace astra
