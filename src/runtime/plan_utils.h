/**
 * @file
 * Shared plan-manipulation helpers for plan-producing backends.
 */
#pragma once

#include <vector>

#include "runtime/plan.h"

namespace astra {

/**
 * Order steps into a valid topological order of the step DAG (edges
 * induced by the graph's dataflow between covered nodes), breaking
 * ties toward program order (smallest max-node-id first). Panics when
 * the step partition induces a cycle.
 */
std::vector<PlanStep> topo_sort_steps(std::vector<PlanStep> steps,
                                      const Graph& graph);

}  // namespace astra
