#include "runtime/memory_static.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "support/logging.h"

namespace astra {
namespace {

/** A free byte range carrying the previous occupant's access steps. */
struct Hole
{
    int64_t begin = 0;
    int64_t end = 0;
    std::vector<int> guards;
};

int64_t
round_up(int64_t v, int64_t align)
{
    return (v + align - 1) / align * align;
}

}  // namespace

StaticArenaResult
plan_static_arena(const std::vector<StaticBuffer>& buffers,
                  const OrderedFn& ordered, int64_t alignment)
{
    ASTRA_ASSERT(alignment > 0, "arena alignment must be positive");
    const int n = static_cast<int>(buffers.size());
    StaticArenaResult res;
    res.offsets.assign(static_cast<size_t>(n), 0);

    // Placement order: entry-live buffers first, then definition order.
    // Ties break by input index so the plan is deterministic.
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return buffers[static_cast<size_t>(a)].def_step <
               buffers[static_cast<size_t>(b)].def_step;
    });

    // Live buffers pending retirement, ordered by last access.
    std::vector<int> live;  // indices, kept sorted by last_use_step
    std::vector<Hole> holes;  // kept sorted by begin
    std::set<std::pair<int, int>> edge_set;
    int64_t tail = 0;

    const auto guard_steps = [&](const StaticBuffer& b) {
        std::vector<int> gs;
        if (b.def_step >= 0)
            gs.push_back(b.def_step);
        if (b.use_steps.empty()) {
            if (b.last_use_step >= 0)
                gs.push_back(b.last_use_step);
        } else {
            gs.insert(gs.end(), b.use_steps.begin(), b.use_steps.end());
        }
        return gs;
    };

    const auto free_buffer = [&](int idx) {
        const StaticBuffer& b = buffers[static_cast<size_t>(idx)];
        Hole h;
        h.begin = res.offsets[static_cast<size_t>(idx)];
        h.end = h.begin + round_up(std::max<int64_t>(b.bytes, 1), alignment);
        h.guards = guard_steps(b);
        auto it = std::lower_bound(
            holes.begin(), holes.end(), h,
            [](const Hole& x, const Hole& y) { return x.begin < y.begin; });
        it = holes.insert(it, h);
        // Coalesce with contiguous neighbors, unioning their guards —
        // a wider hole is claimable in one piece but every previous
        // occupant still gates the reuse.
        if (it + 1 != holes.end() && it->end == (it + 1)->begin) {
            it->end = (it + 1)->end;
            it->guards.insert(it->guards.end(), (it + 1)->guards.begin(),
                              (it + 1)->guards.end());
            holes.erase(it + 1);
        }
        if (it != holes.begin() && (it - 1)->end == it->begin) {
            (it - 1)->end = it->end;
            (it - 1)->guards.insert((it - 1)->guards.end(),
                                    it->guards.begin(), it->guards.end());
            holes.erase(it);
        }
    };

    for (int idx : order) {
        const StaticBuffer& b = buffers[static_cast<size_t>(idx)];
        const int64_t size =
            round_up(std::max<int64_t>(b.bytes, 1), alignment);

        // Retire everything whose last access strictly precedes this
        // definition in plan order. `last_use == def` stays live: a
        // step may not overwrite bytes it concurrently reads.
        if (b.def_step >= 0) {
            for (size_t i = 0; i < live.size();) {
                const StaticBuffer& a = buffers[static_cast<size_t>(live[i])];
                const int last =
                    std::max(a.def_step,
                             a.use_steps.empty()
                                 ? a.last_use_step
                                 : *std::max_element(a.use_steps.begin(),
                                                     a.use_steps.end()));
                if (last < b.def_step) {
                    free_buffer(live[i]);
                    live.erase(live.begin() + static_cast<long>(i));
                } else {
                    ++i;
                }
            }
        }

        // First fit over the free list (lowest offset wins).
        bool placed = false;
        for (size_t h = 0; h < holes.size(); ++h) {
            if (holes[h].end - holes[h].begin < size)
                continue;
            res.offsets[static_cast<size_t>(idx)] = holes[h].begin;
            for (int g : holes[h].guards) {
                if (g < 0 || b.def_step < 0)
                    continue;
                if (!ordered(g, b.def_step) &&
                    edge_set.emplace(g, b.def_step).second)
                    res.control_edges.push_back(
                        ControlEdge{g, b.def_step});
            }
            holes[h].begin += size;
            if (holes[h].begin == holes[h].end)
                holes.erase(holes.begin() + static_cast<long>(h));
            placed = true;
            break;
        }
        if (!placed) {
            res.offsets[static_cast<size_t>(idx)] = tail;
            tail += size;
        }
        live.push_back(idx);
        res.high_water =
            std::max(res.high_water,
                     res.offsets[static_cast<size_t>(idx)] + size);
    }
    return res;
}

}  // namespace astra
