/**
 * @file
 * Lowers plan steps to simulated-GPU kernels: a cost shape (from the
 * kernel libraries) plus a host compute closure (real FP32 math), bound
 * to device buffers through a TensorMap.
 *
 * This is the code every dispatcher shares — native, cuDNN-path,
 * XLA-like, and Astra's custom wirer all lower through here, which is
 * what makes their outputs directly comparable (and value-checkable).
 */
#pragma once

#include <functional>

#include "runtime/plan.h"
#include "runtime/tensor_map.h"
#include "sim/kernel.h"

namespace astra {

/** Host computation for a single graph node (reference semantics). */
std::function<void()> make_node_compute(const Graph& graph, NodeId id,
                                        const TensorMap& tmap);

/** GEMM problem size of a MatMul node (post-transpose m, n, k). */
GemmShape matmul_shape(const Graph& graph, const Node& node);

/**
 * Build the device kernel for one plan step.
 *
 * For FusedGemm steps the covered MatMuls must share one operand and
 * agree in shape; for LadderGemm the MatMul results are accumulated in
 * node order into the ladder's final output buffer. Barrier steps have
 * no kernel and must not be passed here.
 */
KernelDesc build_step_kernel(const PlanStep& step, const Graph& graph,
                             const TensorMap& tmap, const GpuConfig& cfg);

/**
 * Number of HBM passes a fused elementwise group pays: distinct
 * external inputs plus outputs still visible outside the group.
 */
int fused_elementwise_passes(const PlanStep& step, const Graph& graph);

}  // namespace astra
