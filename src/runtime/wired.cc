#include "runtime/wired.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "support/logging.h"

namespace astra {

WiredProgram
compile_plan(const ExecutionPlan& plan, const Graph& graph, bool profiling)
{
    const int num_steps = static_cast<int>(plan.steps.size());
    WiredProgram prog;
    prog.num_streams = plan.num_streams;
    prog.profiling = profiling;
    prog.step_begin.assign(static_cast<size_t>(num_steps) + 1, 0);
    prog.is_barrier.assign(static_cast<size_t>(num_steps), 0);

    // Producer step of every covered node.
    std::vector<int> producer(static_cast<size_t>(graph.size()), -1);
    for (int i = 0; i < num_steps; ++i)
        for (NodeId id : plan.steps[static_cast<size_t>(i)].nodes)
            producer[static_cast<size_t>(id)] = i;

    // Which steps need a completion event (cross-stream consumers).
    std::vector<bool> needs_event(static_cast<size_t>(num_steps), false);
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[static_cast<size_t>(i)];
        if (step.kind == StepKind::Barrier)
            continue;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                const int p = producer[static_cast<size_t>(in)];
                if (p == i)
                    continue;  // internal edge of a fused step
                if (p < 0)
                    continue;  // graph source
                ASTRA_ASSERT(p < i, "plan order violates dependencies: "
                             "step ", i, " reads node %", in,
                             " produced by later step ", p);
                if (plan.steps[static_cast<size_t>(p)].stream != step.stream)
                    needs_event[static_cast<size_t>(p)] = true;
            }
        }
    }

    // Emit the command stream — the exact sequence the historical
    // enqueuer issued, so playing it is bit-identical to dispatching
    // the plan step by step.
    std::vector<int32_t> done_slot(static_cast<size_t>(num_steps), -1);
    std::vector<std::pair<int32_t, int32_t>> barrier_range(
        static_cast<size_t>(num_steps), {0, 0});
    int current_barrier = -1;
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[static_cast<size_t>(i)];
        prog.step_begin[static_cast<size_t>(i)] =
            static_cast<int32_t>(prog.cmds.size());

        if (step.kind == StepKind::Barrier) {
            // Every stream records its arrival, then waits on everyone
            // else's arrival: a full cross-stream rendezvous.
            prog.is_barrier[static_cast<size_t>(i)] = 1;
            const int32_t b0 =
                static_cast<int32_t>(prog.barrier_slots.size());
            for (int s = 0; s < plan.num_streams; ++s) {
                const int32_t slot = prog.num_events++;
                prog.barrier_slots.push_back(slot);
                prog.cmds.push_back({WiredOp::Record, s, slot});
            }
            for (int s = 0; s < plan.num_streams; ++s)
                for (int t = 0; t < plan.num_streams; ++t)
                    if (t != s)
                        prog.cmds.push_back(
                            {WiredOp::Wait, s,
                             prog.barrier_slots[static_cast<size_t>(b0 + t)]});
            barrier_range[static_cast<size_t>(i)] = {
                b0, b0 + plan.num_streams};
            current_barrier = i;
            continue;
        }

        ASTRA_ASSERT(step.stream >= 0 && step.stream < plan.num_streams,
                     "step ", i, " uses stream ", step.stream,
                     " but plan has ", plan.num_streams);

        // Cross-stream waits for this step's external inputs.
        std::set<int> waited;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                const int p = producer[static_cast<size_t>(in)];
                if (p < 0 || p == i)
                    continue;
                const PlanStep& prod = plan.steps[static_cast<size_t>(p)];
                if (prod.stream != step.stream && !waited.count(p)) {
                    ASTRA_ASSERT(done_slot[static_cast<size_t>(p)] >= 0);
                    prog.cmds.push_back(
                        {WiredOp::Wait, step.stream,
                         done_slot[static_cast<size_t>(p)]});
                    waited.insert(p);
                }
            }
        }

        int32_t start = -1;
        if (profiling && step.profile && !step.epoch_metric) {
            start = prog.num_events++;
            prog.cmds.push_back({WiredOp::Record, step.stream, start});
        }

        prog.cmds.push_back({WiredOp::Launch, step.stream, i});

        if (needs_event[static_cast<size_t>(i)]) {
            done_slot[static_cast<size_t>(i)] = prog.num_events++;
            prog.cmds.push_back({WiredOp::Record, step.stream,
                                 done_slot[static_cast<size_t>(i)]});
        }
        if (profiling && step.profile) {
            const int32_t end = prog.num_events++;
            prog.cmds.push_back({WiredOp::Record, step.stream, end});

            WiredProfile wp;
            wp.key = step.profile_key;
            wp.epoch_metric = step.epoch_metric;
            wp.step = i;
            wp.start_slot = start;
            wp.end_slot = end;
            if (step.epoch_metric && current_barrier >= 0) {
                wp.barrier_begin =
                    barrier_range[static_cast<size_t>(current_barrier)]
                        .first;
                wp.barrier_end =
                    barrier_range[static_cast<size_t>(current_barrier)]
                        .second;
            }
            prog.profiles.push_back(std::move(wp));
        }
    }
    prog.step_begin[static_cast<size_t>(num_steps)] =
        static_cast<int32_t>(prog.cmds.size());
    return prog;
}

void
collect_wired_profiles(const WiredProgram& program,
                       const std::vector<EventId>& events,
                       const SimGpu& gpu, DispatchResult& result)
{
    for (const WiredProfile& wp : program.profiles) {
        if (wp.epoch_metric) {
            // Time from the preceding barrier (stream-history reset
            // point) to this step's completion, maximized over the key.
            double base = 0.0;
            for (int32_t k = wp.barrier_begin; k < wp.barrier_end; ++k)
                base = std::max(
                    base,
                    gpu.event_time_ns(events[static_cast<size_t>(
                        program.barrier_slots[static_cast<size_t>(k)])]));
            const double v =
                gpu.event_time_ns(
                    events[static_cast<size_t>(wp.end_slot)]) -
                base;
            auto [it, inserted] = result.profile_ns.emplace(wp.key, v);
            if (!inserted)
                it->second = std::max(it->second, v);
        } else {
            result.profile_ns[wp.key] += gpu.elapsed_ns(
                events[static_cast<size_t>(wp.start_slot)],
                events[static_cast<size_t>(wp.end_slot)]);
        }
    }
}

void
insert_control_edges(WiredProgram& program,
                     const std::vector<ControlEdge>& edges)
{
    if (edges.empty())
        return;
    const int num_steps =
        static_cast<int>(program.step_begin.size()) - 1;

    // One fresh slot per edge: recorded right after from_step's launch,
    // waited on right before to_step's launch.
    std::map<int, std::vector<int32_t>> record_after, wait_before;
    for (const ControlEdge& e : edges) {
        ASTRA_ASSERT(e.from_step >= 0 && e.from_step < num_steps &&
                     e.to_step >= 0 && e.to_step < num_steps,
                     "control edge ", e.from_step, "->", e.to_step,
                     " out of range");
        ASTRA_ASSERT(!program.is_barrier[static_cast<size_t>(e.from_step)] &&
                     !program.is_barrier[static_cast<size_t>(e.to_step)],
                     "control edges must join launching steps");
        const int32_t slot = program.num_events++;
        record_after[e.from_step].push_back(slot);
        wait_before[e.to_step].push_back(slot);
    }

    std::vector<WiredCmd> cmds;
    cmds.reserve(program.cmds.size() + 2 * edges.size());
    std::vector<int32_t> step_begin(program.step_begin.size(), 0);
    for (int i = 0; i < num_steps; ++i) {
        step_begin[static_cast<size_t>(i)] =
            static_cast<int32_t>(cmds.size());
        const int32_t begin = program.step_begin[static_cast<size_t>(i)];
        const int32_t end = program.step_begin[static_cast<size_t>(i) + 1];
        for (int32_t c = begin; c < end; ++c) {
            const WiredCmd& cmd = program.cmds[static_cast<size_t>(c)];
            if (cmd.op == WiredOp::Launch) {
                if (auto it = wait_before.find(i); it != wait_before.end())
                    for (int32_t slot : it->second)
                        cmds.push_back({WiredOp::Wait, cmd.stream, slot});
                cmds.push_back(cmd);
                if (auto it = record_after.find(i);
                    it != record_after.end())
                    for (int32_t slot : it->second)
                        cmds.push_back(
                            {WiredOp::Record, cmd.stream, slot});
            } else {
                cmds.push_back(cmd);
            }
        }
    }
    step_begin[static_cast<size_t>(num_steps)] =
        static_cast<int32_t>(cmds.size());
    program.cmds = std::move(cmds);
    program.step_begin = std::move(step_begin);
}

namespace {

/**
 * Abstract execution of a WiredProgram: stream FIFO semantics with
 * event record/wait edges tracked as vector clocks. This is the
 * barrier/ordering simulator — it establishes, per launch, which other
 * launches' *completions* provably precede it.
 */
struct ProgramOrder
{
    bool ok = true;
    std::string why;

    /** Per step: launch stream (-1 = no launch, e.g. barriers). */
    std::vector<int> stream;

    /** Per step: 1-based position of its launch on its stream. */
    std::vector<int64_t> pos;

    /** Per step: the launching stream's vector clock at launch. */
    std::vector<std::vector<int64_t>> vc;

    /**
     * True when `from`'s completion happens-before `to`'s launch.
     * Same stream: FIFO order (a stream starts a command only after
     * the previous one completed). Cross-stream: `to`'s launch clock
     * must know stream(from) past `from`'s position — knowledge only
     * travels through an event recorded *after* `from`, whose
     * execution implies `from` completed. `from == -1` (live at
     * entry) precedes everything.
     */
    bool
    completes_before(int from, int to) const
    {
        if (from < 0)
            return true;
        if (to < 0 || from == to)
            return false;
        const int sf = stream[static_cast<size_t>(from)];
        const int st = stream[static_cast<size_t>(to)];
        if (sf < 0 || st < 0)
            return false;
        if (sf == st)
            return pos[static_cast<size_t>(from)] <
                   pos[static_cast<size_t>(to)];
        return vc[static_cast<size_t>(to)][static_cast<size_t>(sf)] >
               pos[static_cast<size_t>(from)];
    }
};

ProgramOrder
simulate_program(const WiredProgram& prog, int num_kernels)
{
    ProgramOrder order;
    const int num_streams = prog.num_streams;
    const auto fail = [&](std::string why) {
        order.ok = false;
        order.why = std::move(why);
        return order;
    };

    if (prog.step_begin.empty() ||
        prog.step_begin.back() != static_cast<int32_t>(prog.cmds.size()))
        return fail("step spans do not cover the command array");
    if (num_streams <= 0)
        return fail("program has no streams");

    order.stream.assign(static_cast<size_t>(num_kernels), -1);
    order.pos.assign(static_cast<size_t>(num_kernels), 0);
    order.vc.assign(static_cast<size_t>(num_kernels), {});

    // Structural checks + per-stream command lists (program order).
    std::vector<std::vector<int32_t>> per_stream(
        static_cast<size_t>(num_streams));
    for (int32_t c = 0; c < static_cast<int32_t>(prog.cmds.size()); ++c) {
        const WiredCmd& cmd = prog.cmds[static_cast<size_t>(c)];
        if (cmd.stream < 0 || cmd.stream >= num_streams)
            return fail("command references stream " +
                        std::to_string(cmd.stream) + " of " +
                        std::to_string(num_streams));
        if (cmd.op == WiredOp::Launch) {
            if (cmd.arg < 0 || cmd.arg >= num_kernels)
                return fail("launch references step " +
                            std::to_string(cmd.arg) + " out of range");
            if (order.stream[static_cast<size_t>(cmd.arg)] >= 0)
                return fail("step " + std::to_string(cmd.arg) +
                            " launched twice");
            order.stream[static_cast<size_t>(cmd.arg)] = cmd.stream;
        } else if (cmd.arg < 0 || cmd.arg >= prog.num_events) {
            return fail("event slot " + std::to_string(cmd.arg) +
                        " out of range (" +
                        std::to_string(prog.num_events) + " slots)");
        }
        per_stream[static_cast<size_t>(cmd.stream)].push_back(c);
    }

    // Worklist execution: advance each stream as far as its waits
    // allow; repeat until quiescent. A wait is executable once its
    // slot's record has executed.
    std::vector<size_t> cursor(static_cast<size_t>(num_streams), 0);
    std::vector<int64_t> position(static_cast<size_t>(num_streams), 0);
    std::vector<std::vector<int64_t>> clock(
        static_cast<size_t>(num_streams),
        std::vector<int64_t>(static_cast<size_t>(num_streams), 0));
    // Per event slot: the recording stream's clock, empty = unrecorded.
    std::vector<std::vector<int64_t>> event_clock(
        static_cast<size_t>(prog.num_events));
    std::vector<uint8_t> recorded(static_cast<size_t>(prog.num_events), 0);

    bool progress = true;
    while (progress) {
        progress = false;
        for (int s = 0; s < num_streams; ++s) {
            auto& cur = cursor[static_cast<size_t>(s)];
            const auto& cmds_s = per_stream[static_cast<size_t>(s)];
            while (cur < cmds_s.size()) {
                const WiredCmd& cmd =
                    prog.cmds[static_cast<size_t>(cmds_s[cur])];
                if (cmd.op == WiredOp::Wait &&
                    !recorded[static_cast<size_t>(cmd.arg)])
                    break;  // stalled; retry after others advance
                auto& my_clock = clock[static_cast<size_t>(s)];
                ++position[static_cast<size_t>(s)];
                my_clock[static_cast<size_t>(s)] =
                    position[static_cast<size_t>(s)];
                switch (cmd.op) {
                case WiredOp::Launch:
                    order.pos[static_cast<size_t>(cmd.arg)] =
                        position[static_cast<size_t>(s)];
                    order.vc[static_cast<size_t>(cmd.arg)] = my_clock;
                    break;
                case WiredOp::Record:
                    if (recorded[static_cast<size_t>(cmd.arg)])
                        return fail("event slot " +
                                    std::to_string(cmd.arg) +
                                    " recorded twice");
                    recorded[static_cast<size_t>(cmd.arg)] = 1;
                    event_clock[static_cast<size_t>(cmd.arg)] = my_clock;
                    break;
                case WiredOp::Wait: {
                    const auto& ec =
                        event_clock[static_cast<size_t>(cmd.arg)];
                    for (int t = 0; t < num_streams; ++t)
                        my_clock[static_cast<size_t>(t)] =
                            std::max(my_clock[static_cast<size_t>(t)],
                                     ec[static_cast<size_t>(t)]);
                    break;
                }
                }
                ++cur;
                progress = true;
            }
        }
    }
    for (int s = 0; s < num_streams; ++s) {
        const auto& cmds_s = per_stream[static_cast<size_t>(s)];
        if (cursor[static_cast<size_t>(s)] < cmds_s.size()) {
            const WiredCmd& cmd = prog.cmds[static_cast<size_t>(
                cmds_s[cursor[static_cast<size_t>(s)]])];
            return fail(
                "deadlock: stream " + std::to_string(s) +
                " waits on event slot " + std::to_string(cmd.arg) +
                " that is never recorded before it (stale event slot)");
        }
    }
    return order;
}

/** Byte-overlapping interval pairs, found by an offset-sorted sweep. */
std::vector<std::pair<int, int>>
overlapping_pairs(const std::vector<ArenaInterval>& intervals)
{
    std::vector<int> by_offset(intervals.size());
    std::iota(by_offset.begin(), by_offset.end(), 0);
    std::sort(by_offset.begin(), by_offset.end(), [&](int a, int b) {
        return intervals[static_cast<size_t>(a)].offset <
               intervals[static_cast<size_t>(b)].offset;
    });
    std::vector<std::pair<int, int>> pairs;
    // Active set: intervals whose [offset, offset+bytes) may still
    // reach later offsets.
    std::vector<int> active;
    for (int idx : by_offset) {
        const ArenaInterval& b = intervals[static_cast<size_t>(idx)];
        for (size_t i = 0; i < active.size();) {
            const ArenaInterval& a =
                intervals[static_cast<size_t>(active[i])];
            if (a.offset + a.bytes <= b.offset) {
                active[i] = active.back();
                active.pop_back();
                continue;
            }
            if (a.bytes > 0 && b.bytes > 0)
                pairs.emplace_back(active[i], idx);
            ++i;
        }
        active.push_back(idx);
    }
    return pairs;
}

/** Reading steps of each interval, inverted from the per-step tables. */
std::vector<std::vector<int>>
interval_users(const WiredBinary& bin)
{
    std::vector<std::vector<int>> users(bin.intervals.size());
    for (int i = 0; i < static_cast<int>(bin.access.size()); ++i) {
        const WiredStepAccess& a = bin.access[static_cast<size_t>(i)];
        for (int32_t u = a.use_begin; u < a.use_end; ++u)
            users[static_cast<size_t>(bin.uses[static_cast<size_t>(u)])]
                .push_back(i);
    }
    return users;
}

std::string
describe_interval(const WiredBinary& bin, int idx)
{
    const ArenaInterval& iv = bin.intervals[static_cast<size_t>(idx)];
    std::ostringstream os;
    os << "node %" << iv.node << " [" << iv.offset << ", "
       << iv.offset + iv.bytes << ") def=" << iv.def_step;
    return os.str();
}

}  // namespace

WiredVerdict
verify_wired(const WiredBinary& bin)
{
    WiredVerdict v;
    const auto fail = [&](std::string why) {
        v.ok = false;
        v.why = std::move(why);
        return v;
    };

    const int num_steps = bin.steps();
    if (static_cast<int>(bin.program.step_begin.size()) != num_steps + 1)
        return fail("program spans disagree with kernel table");

    const ProgramOrder order = simulate_program(bin.program, num_steps);
    if (!order.ok)
        return fail(order.why);

    // Every non-barrier step must actually launch.
    for (int i = 0; i < num_steps; ++i)
        if (!bin.program.is_barrier[static_cast<size_t>(i)] &&
            order.stream[static_cast<size_t>(i)] < 0)
            return fail("step " + std::to_string(i) + " never launches");

    // Use-before-def: a step may only read intervals whose producing
    // launch provably *completed* before the reader launched.
    if (bin.access.size() != static_cast<size_t>(num_steps) &&
        !bin.access.empty())
        return fail("access table disagrees with step count");
    for (int i = 0; i < static_cast<int>(bin.access.size()); ++i) {
        const WiredStepAccess& a = bin.access[static_cast<size_t>(i)];
        for (int32_t u = a.use_begin; u < a.use_end; ++u) {
            const int32_t iv = bin.uses[static_cast<size_t>(u)];
            if (iv < 0 || iv >= static_cast<int32_t>(bin.intervals.size()))
                return fail("use references interval out of range");
            const int def =
                bin.intervals[static_cast<size_t>(iv)].def_step;
            if (def == i)
                continue;  // internal edge of a fused step
            if (!order.completes_before(def, i))
                return fail("use-before-def: step " + std::to_string(i) +
                            " reads " + describe_interval(bin, iv) +
                            " without ordering after its definition");
        }
    }

    // Overlap-while-live: byte-sharing intervals need every access of
    // one ordered before the definition of the other.
    const std::vector<std::vector<int>> users = interval_users(bin);
    const auto accesses_before = [&](int x, int to_def) {
        const ArenaInterval& iv = bin.intervals[static_cast<size_t>(x)];
        if (!order.completes_before(iv.def_step, to_def))
            return false;
        for (int u : users[static_cast<size_t>(x)])
            if (u != to_def && !order.completes_before(u, to_def))
                return false;
        return true;
    };
    for (const auto& [x, y] : overlapping_pairs(bin.intervals)) {
        const ArenaInterval& a = bin.intervals[static_cast<size_t>(x)];
        const ArenaInterval& b = bin.intervals[static_cast<size_t>(y)];
        if (a.def_step < 0 && b.def_step < 0)
            return fail("two entry-live intervals overlap: " +
                        describe_interval(bin, x) + " and " +
                        describe_interval(bin, y));
        if (a.def_step < 0 || b.def_step < 0)
            return fail("interval overlaps an entry-live buffer: " +
                        describe_interval(bin, x) + " and " +
                        describe_interval(bin, y));
        if (!accesses_before(x, b.def_step) &&
            !accesses_before(y, a.def_step))
            return fail("overlap-while-live: " +
                        describe_interval(bin, x) + " and " +
                        describe_interval(bin, y) +
                        " share bytes without ordering");
    }
    return v;
}

WiredBinary
lower_plan(const ExecutionPlan& plan, const Graph& graph,
           const TensorMap& tmap, const GpuConfig& cfg)
{
    obs::ScopedSpan span(obs::Category::Wire, "wired.lower");
    const int num_steps = static_cast<int>(plan.steps.size());
    WiredBinary bin;
    bin.program = compile_plan(plan, graph, /*profiling=*/true);
    bin.arena_bytes = tmap.peak_bytes();

    // Prebuild every kernel once: descriptor names, fused shapes and
    // compute closures (bound to arena offsets through the TensorMap)
    // are frozen here, off the replay hot path.
    bin.kernels.resize(static_cast<size_t>(num_steps));
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[static_cast<size_t>(i)];
        if (step.kind != StepKind::Barrier)
            bin.kernels[static_cast<size_t>(i)] =
                build_step_kernel(step, graph, tmap, cfg);
    }

    // Arena interval per touched tensor: covered nodes get their
    // producing step; uncovered inputs (graph sources) are live at
    // entry.
    std::vector<int> producer(static_cast<size_t>(graph.size()), -1);
    for (int i = 0; i < num_steps; ++i)
        for (NodeId id : plan.steps[static_cast<size_t>(i)].nodes)
            producer[static_cast<size_t>(id)] = i;

    std::vector<int32_t> interval_of(static_cast<size_t>(graph.size()),
                                     -1);
    const auto intern = [&](NodeId id, int def_step) {
        int32_t& slot = interval_of[static_cast<size_t>(id)];
        if (slot >= 0)
            return slot;
        slot = static_cast<int32_t>(bin.intervals.size());
        ArenaInterval iv;
        iv.node = id;
        iv.offset = tmap.ptr(id);
        iv.bytes = static_cast<int64_t>(graph.node(id).desc.bytes());
        iv.def_step = def_step;
        iv.last_use_step = def_step;
        bin.intervals.push_back(iv);
        return slot;
    };

    bin.access.resize(static_cast<size_t>(num_steps));
    for (int i = 0; i < num_steps; ++i) {
        const PlanStep& step = plan.steps[static_cast<size_t>(i)];
        WiredStepAccess& acc = bin.access[static_cast<size_t>(i)];
        acc.def_begin = static_cast<int32_t>(bin.defs.size());
        for (NodeId id : step.nodes)
            bin.defs.push_back(intern(id, i));
        acc.def_end = static_cast<int32_t>(bin.defs.size());

        acc.use_begin = static_cast<int32_t>(bin.uses.size());
        std::set<int32_t> used;
        for (NodeId id : step.nodes) {
            for (NodeId in : graph.node(id).inputs) {
                if (producer[static_cast<size_t>(in)] == i)
                    continue;  // internal edge of a fused step
                const int32_t iv =
                    intern(in, producer[static_cast<size_t>(in)]);
                if (used.insert(iv).second)
                    bin.uses.push_back(iv);
            }
        }
        acc.use_end = static_cast<int32_t>(bin.uses.size());
        for (int32_t u = acc.use_begin; u < acc.use_end; ++u) {
            ArenaInterval& iv =
                bin.intervals[static_cast<size_t>(
                    bin.uses[static_cast<size_t>(u)])];
            iv.last_use_step = std::max(iv.last_use_step, i);
        }
    }
    // Graph outputs (and never-read results) must survive the whole
    // mini-batch: pin them to the one-past-the-end step.
    for (ArenaInterval& iv : bin.intervals)
        if (iv.node >= 0 && graph.user_count(iv.node) == 0)
            iv.last_use_step = num_steps;
    for (NodeId id : graph.outputs())
        if (interval_of[static_cast<size_t>(id)] >= 0)
            bin.intervals[static_cast<size_t>(
                             interval_of[static_cast<size_t>(id)])]
                .last_use_step = num_steps;

    // Audit every arena-byte reuse against the program's own
    // happens-before order; reuse the schedule does not already order
    // gets an explicit control edge instead of trusting dynamic
    // liveness.
    ProgramOrder order = simulate_program(bin.program, num_steps);
    ASTRA_ASSERT(order.ok, "compiled program is not executable: ",
                 order.why);
    const std::vector<std::vector<int>> users = interval_users(bin);
    std::vector<ControlEdge> edges;
    std::set<std::pair<int, int>> edge_set;
    const auto order_accesses = [&](int x, int to_def) {
        const ArenaInterval& iv = bin.intervals[static_cast<size_t>(x)];
        const auto need = [&](int from) {
            if (from == to_def || order.completes_before(from, to_def))
                return;
            ASTRA_ASSERT(from >= 0 && from < to_def,
                         "statically unschedulable arena reuse: step ",
                         from, " accesses bytes redefined by earlier "
                         "step ", to_def);
            if (edge_set.emplace(from, to_def).second)
                edges.push_back(ControlEdge{from, to_def});
        };
        need(iv.def_step);
        for (int u : users[static_cast<size_t>(x)])
            need(u);
    };
    for (const auto& [x, y] : overlapping_pairs(bin.intervals)) {
        const ArenaInterval& a = bin.intervals[static_cast<size_t>(x)];
        const ArenaInterval& b = bin.intervals[static_cast<size_t>(y)];
        ASTRA_ASSERT(a.def_step >= 0 || b.def_step >= 0,
                     "entry-live tensors %", a.node, " and %", b.node,
                     " overlap in the arena");
        ASTRA_ASSERT(a.def_step != b.def_step,
                     "step ", a.def_step, " defines overlapping tensors %",
                     a.node, " and %", b.node);
        // The later definition inherits the bytes; every access of the
        // earlier occupant must be ordered before it.
        if (a.def_step < b.def_step)
            order_accesses(x, b.def_step);
        else
            order_accesses(y, a.def_step);
    }
    if (!edges.empty()) {
        insert_control_edges(bin.program, edges);
        bin.control_edges = static_cast<int64_t>(edges.size());
    }

    // Feasible-memory static re-packing of the same lifetimes, for
    // observability: how tight a from-scratch static arena would be,
    // and whether it would need edges the schedule lacks.
    std::vector<StaticBuffer> bufs;
    bufs.reserve(bin.intervals.size());
    for (size_t i = 0; i < bin.intervals.size(); ++i) {
        const ArenaInterval& iv = bin.intervals[i];
        StaticBuffer sb;
        sb.bytes = iv.bytes;
        sb.def_step = iv.def_step;
        sb.last_use_step = iv.last_use_step;
        sb.use_steps = users[i];
        bufs.push_back(std::move(sb));
    }
    const StaticArenaResult packed = plan_static_arena(
        bufs,
        [&](int from, int to) { return order.completes_before(from, to); });
    bin.packed_bytes = packed.high_water;

    if (obs::enabled()) {
        static obs::Counter& lowered = obs::counter("wired.lowered");
        lowered.add();
        if (bin.control_edges > 0) {
            static obs::Counter& ce =
                obs::counter("wired.control_edges");
            ce.add(bin.control_edges);
        }
    }
    return bin;
}

DispatchResult
replay_wired(const WiredBinary& bin, const GpuConfig& cfg)
{
    const bool obs_on = obs::enabled();
    obs::ScopedSpan replay_span(obs::Category::Dispatch, "wired.replay");
    const double obs_anchor = obs_on ? obs::now_ns() : 0.0;
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.collect_trace = cfg.collect_trace || obs_on;

    std::unique_ptr<SimGpu> gpu;
    std::vector<EventId> events;
    DispatchResult result = run_dispatch_transaction(
        gpu_cfg, bin.program.num_streams,
        [&](SimGpu& g) {
            // The steady-state hot loop: no dependency analysis, no
            // descriptor construction, no hashing — one pass over the
            // preresolved command array.
            events.resize(static_cast<size_t>(bin.program.num_events));
            for (int32_t e = 0; e < bin.program.num_events; ++e)
                events[static_cast<size_t>(e)] = g.create_event();
            for (const WiredCmd& cmd : bin.program.cmds) {
                switch (cmd.op) {
                case WiredOp::Launch:
                    g.launch(cmd.stream,
                             bin.kernels[static_cast<size_t>(cmd.arg)]);
                    break;
                case WiredOp::Record:
                    g.record_event(cmd.stream,
                                   events[static_cast<size_t>(cmd.arg)]);
                    break;
                case WiredOp::Wait:
                    g.wait_event(cmd.stream,
                                 events[static_cast<size_t>(cmd.arg)]);
                    break;
                }
            }
        },
        &gpu);

    if (cfg.collect_trace)
        result.trace = gpu->trace();
    if (obs_on) {
        obs::add_kernel_spans(gpu->trace(), obs_anchor);
        static obs::Counter& replays = obs::counter("wired.replays");
        replays.add();
        static obs::Counter& kernels =
            obs::counter("dispatch.kernels_launched");
        kernels.add(gpu->stats().kernels_launched);
        obs::observe("dispatch.total_ns", result.total_ns);
        obs::observe("wired.replay_host_ns", result.host_enqueue_ns);
        if (result.fault_attempts > 0) {
            static obs::Counter& retries =
                obs::counter("dispatch.fault_retries");
            retries.add(result.fault_attempts);
        }
        if (result.faults_seen > 0) {
            static obs::Counter& faults =
                obs::counter("dispatch.faults_injected");
            faults.add(result.faults_seen);
        }
    }

    collect_wired_profiles(bin.program, events, *gpu, result);
    return result;
}

}  // namespace astra
