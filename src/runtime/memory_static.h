/**
 * @file
 * Feasible-memory static arena planning for the compiled ("wired")
 * dispatch path.
 *
 * Once wiring has converged the tensor lifetimes of a mini-batch are
 * fully known, so arena reuse can be decided at lowering time instead
 * of trusting a dynamic allocator's liveness bookkeeping on the hot
 * path. The planner here is a first-fit list scheduler over buffer
 * lifetimes: a later buffer may claim the bytes of an earlier, dead
 * buffer, but every such reuse must be *provably ordered* — when the
 * already-emitted command stream does not order the previous
 * occupant's last access before the new occupant's definition, the
 * planner emits an explicit control edge (an event record/wait pair)
 * instead of silently relying on schedule luck. This is the
 * npu_compiler "feasible memory scheduler + control edges" discipline:
 * memory legality is a compile-time artifact, checked by a simulator
 * (wired.h's verifier), not a runtime behavior.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace astra {

/** One buffer's lifetime as seen by the static planner. */
struct StaticBuffer
{
    int64_t bytes = 0;

    /** Plan step that writes the buffer; -1 = live at entry (source). */
    int def_step = -1;

    /**
     * Last plan step that reads the buffer, inclusive. A buffer that
     * must survive the whole mini-batch (graph output, parameter) uses
     * the one-past-the-last step index so it is never recycled.
     */
    int last_use_step = -1;

    /**
     * All reading steps. When empty the planner guards reuse on
     * def_step/last_use_step alone; callers whose buffers have
     * additional concurrent readers must list every one, since any
     * unlisted access could race the reuse unguarded.
     */
    std::vector<int> use_steps;
};

/**
 * A synchronization edge the planner had to add to make a reuse legal:
 * `from_step`'s completion must be ordered before `to_step`'s launch.
 */
struct ControlEdge
{
    int from_step = -1;  ///< an access of the hole's previous occupant
    int to_step = -1;    ///< definition of the new occupant
};

/** Outcome of static arena planning. */
struct StaticArenaResult
{
    /** Arena byte offset per input buffer. */
    std::vector<int64_t> offsets;

    /** Arena extent in bytes (the static peak). */
    int64_t high_water = 0;

    /** Edges required to make every planned reuse schedule-safe. */
    std::vector<ControlEdge> control_edges;
};

/**
 * Ordering oracle: true when `from_step`'s completion happens-before
 * `to_step`'s launch under the already-emitted command stream (stream
 * FIFO order plus event record/wait edges). `from_step == -1` (live at
 * entry) is ordered before everything.
 */
using OrderedFn = std::function<bool(int from_step, int to_step)>;

/**
 * First-fit feasible-memory planning of buffer lifetimes into one
 * arena.
 *
 * Buffers are placed in definition order (entry-live buffers first). A
 * freed buffer's bytes become a hole carrying the previous occupant's
 * access steps as guards; claiming guarded bytes is always *allowed*
 * (that is what makes the packing tight), but each guard access that
 * the ordering oracle cannot already prove ordered before the new
 * definition yields a ControlEdge the caller must realize (see
 * insert_control_edges in wired.h).
 *
 * @param alignment arena offsets are rounded up to this many bytes.
 */
StaticArenaResult plan_static_arena(const std::vector<StaticBuffer>& buffers,
                                    const OrderedFn& ordered,
                                    int64_t alignment = 256);

}  // namespace astra
