/**
 * @file
 * Compiled steady-state dispatch: lowering a converged ExecutionPlan +
 * TensorMap into a "wired binary" that replays a mini-batch with zero
 * per-step dependency analysis, zero hash lookups and no per-step plan
 * allocation.
 *
 * Astra's premise (paper §2.1) is that mini-batch iterations are
 * predictable: once wiring converges, millions of identical steps
 * follow. The generic dispatcher still walks the DFG every step —
 * per-node producer chasing, cross-stream wait resolution, kernel
 * descriptor construction. This module does that work once, at
 * lowering time, and freezes the result:
 *
 *  - WiredProgram: one contiguous array of launch records — every
 *    kernel launch, event record and event wait the dispatcher would
 *    have issued, with streams and event slots preresolved. Replay is
 *    a branch-light loop over this array.
 *  - WiredBinary: the program plus prebuilt kernel descriptors (fn
 *    pointers bound to arena byte offsets through the TensorMap) and
 *    the arena interval table (offset/size/lifetime per tensor).
 *  - Lowering audits every arena-byte reuse against the program's own
 *    happens-before order and inserts explicit control edges where
 *    reuse would otherwise rely on dynamic liveness (the npu_compiler
 *    feasible-memory-scheduler discipline; see memory_static.h).
 *  - verify_wired() is the compile-time barrier/ordering simulator: it
 *    replays the command stream abstractly (stream FIFO + event
 *    vector clocks) and rejects stale event slots, use-before-def and
 *    overlap-while-live — so an illegal lowering is caught in tests,
 *    not as silent value corruption a million steps in.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/dispatcher.h"
#include "runtime/memory_static.h"
#include "runtime/plan.h"
#include "runtime/tensor_map.h"
#include "sim/gpu.h"
#include "sim/kernel.h"

namespace astra {

/** One preresolved dispatcher command. */
enum class WiredOp : uint8_t
{
    Launch,  ///< launch kernels[arg] (arg = plan step index)
    Record,  ///< record event slot `arg` on `stream`
    Wait,    ///< make `stream` wait on event slot `arg`
};

/** One entry of the contiguous command array. */
struct WiredCmd
{
    WiredOp op = WiredOp::Launch;
    int32_t stream = 0;
    int32_t arg = -1;
};

/** Profiling readout recipe for one instrumented plan step. */
struct WiredProfile
{
    std::string key;
    bool epoch_metric = false;
    int32_t step = -1;        ///< owning plan step (diagnostics)
    int32_t start_slot = -1;  ///< unused for epoch metrics
    int32_t end_slot = -1;
    /** Slots of the preceding barrier's rendezvous events, as a range
        into WiredProgram::barrier_slots (empty when no barrier). */
    int32_t barrier_begin = 0;
    int32_t barrier_end = 0;
};

/**
 * The preresolved command stream of one mini-batch: what PlanEnqueuer
 * used to derive per dispatch, computed once. Commands of plan step i
 * occupy cmds[step_begin[i], step_begin[i+1]) — the span boundary is
 * where the dp path's after-step hook fires, so hook semantics are
 * identical to the generic dispatcher's.
 */
struct WiredProgram
{
    std::vector<WiredCmd> cmds;

    /** Per step, first command index; has steps+1 entries. */
    std::vector<int32_t> step_begin;

    /** Per step, 1 when the step is a Barrier (no launch, no hook). */
    std::vector<uint8_t> is_barrier;

    /** Flat array of barrier rendezvous slots (see WiredProfile). */
    std::vector<int32_t> barrier_slots;

    /** Number of event slots the replay must create. */
    int32_t num_events = 0;

    int num_streams = 1;

    /** Whether profiling instrumentation was compiled in. */
    bool profiling = false;

    /** Readout recipes, in plan-step order. */
    std::vector<WiredProfile> profiles;
};

/**
 * Compile a plan's dispatch into a WiredProgram. Performs the same
 * dependency analysis as the generic dispatcher (producer steps,
 * cross-stream waits, barrier rendezvous, profiling events) and emits
 * the identical command sequence — replaying the program is
 * bit-identical to enqueueing the plan.
 *
 * @param profiling honor the steps' profile/epoch_metric flags (false
 *        skips instrumentation events — the dp path measures whole
 *        devices, not steps).
 */
WiredProgram compile_plan(const ExecutionPlan& plan, const Graph& graph,
                          bool profiling);

/**
 * Fill result.profile_ns from a synchronized device's event times,
 * following the program's readout recipes. `events` maps slot ->
 * EventId as created by the replayer. Shared by PlanEnqueuer and
 * replay_wired so both paths compute profiles with the same code.
 */
void collect_wired_profiles(const WiredProgram& program,
                            const std::vector<EventId>& events,
                            const SimGpu& gpu, DispatchResult& result);

/**
 * Realize control edges in a compiled program: for each edge, a new
 * event slot is recorded right after `from_step`'s launch and waited
 * on right before `to_step`'s launch. Spans and slot counts are
 * updated; edges into/from barrier steps are invalid (they already
 * rendezvous every stream).
 */
void insert_control_edges(WiredProgram& program,
                          const std::vector<ControlEdge>& edges);

/** One tensor's placement in the arena, with its static lifetime. */
struct ArenaInterval
{
    NodeId node = kInvalidNode;
    int64_t offset = 0;  ///< arena byte offset (DevPtr of the tensor)
    int64_t bytes = 0;
    int32_t def_step = -1;      ///< producing step; -1 = live at entry
    int32_t last_use_step = -1; ///< last reader; steps() = whole batch
};

/** Per-step view into WiredBinary::uses / defs (interval indices). */
struct WiredStepAccess
{
    int32_t use_begin = 0, use_end = 0;
    int32_t def_begin = 0, def_end = 0;
};

/**
 * A fully lowered mini-batch: program + prebuilt kernels + arena map.
 * Valid as long as the TensorMap (and its SimMemory) it was lowered
 * against outlive it — kernel compute closures capture raw buffer
 * pointers, exactly like recorded CUDA graphs capture device pointers.
 */
struct WiredBinary
{
    WiredProgram program;

    /** Per plan step; barrier steps hold an empty descriptor. */
    std::vector<KernelDesc> kernels;

    /** Arena placement and lifetime of every tensor the plan touches. */
    std::vector<ArenaInterval> intervals;

    /** Flat interval-index arrays, viewed per step through `access`. */
    std::vector<int32_t> uses, defs;
    std::vector<WiredStepAccess> access;

    /** Executed arena extent in bytes (the TensorMap's peak). */
    int64_t arena_bytes = 0;

    /**
     * Extent of the feasible-memory static re-packing of the same
     * lifetimes (memory_static.h) — the arena a from-scratch static
     * planner would need. Reported for observability; the executed
     * offsets stay the TensorMap's so values live where kernels were
     * bound.
     */
    int64_t packed_bytes = 0;

    /** Control edges lowering had to insert to make reuse legal. */
    int64_t control_edges = 0;

    int steps() const { return static_cast<int>(kernels.size()); }
};

/**
 * Lower a converged plan into a wired binary: compile the command
 * stream (with profiling instrumentation), prebuild every kernel
 * descriptor against the TensorMap, tabulate arena intervals, and
 * audit every byte-overlapping interval pair against the program's
 * happens-before order — inserting control edges where the schedule
 * alone does not order a reuse. Panics if the plan/TensorMap pair is
 * statically unschedulable (e.g. two live tensors share bytes).
 */
WiredBinary lower_plan(const ExecutionPlan& plan, const Graph& graph,
                       const TensorMap& tmap, const GpuConfig& cfg);

/**
 * Replay a wired binary on a fresh simulated device: a tight loop over
 * the command array — no dependency analysis, no name formatting, no
 * per-step allocation, no hash lookups. Shares dispatch_plan's
 * mini-batch transaction semantics (fault retry, autoboost salting),
 * so results are bit-identical to the generic dispatcher for the same
 * plan. DispatchResult::host_enqueue_ns reports the measured wall-time
 * cost of the enqueue loop, comparable against dispatch_plan's.
 */
DispatchResult replay_wired(const WiredBinary& bin, const GpuConfig& cfg);

/** Outcome of verify_wired. */
struct WiredVerdict
{
    bool ok = true;
    std::string why;  ///< first violation, empty when ok
};

/**
 * The barrier/ordering simulator: abstractly execute the command
 * stream (stream FIFO semantics, event record/wait edges as vector
 * clocks) and check
 *  - liveness: every command executes — a wait on a never-recorded
 *    slot (stale event) or a record/wait cycle is a deadlock;
 *  - slot discipline: no event slot recorded twice, all slot/stream/
 *    step references in bounds;
 *  - use-before-def: every interval a step reads is defined by a step
 *    whose *completion* is ordered before the reader's launch;
 *  - overlap-while-live: byte-overlapping intervals must have one's
 *    every access ordered before the other's definition (entry-live
 *    intervals may never be overlapped).
 */
WiredVerdict verify_wired(const WiredBinary& bin);

}  // namespace astra
