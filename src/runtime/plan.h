/**
 * @file
 * Execution plans: the interface between the compiler side (native
 * lowering, XLA-like static optimizer, Astra's custom wirer) and the
 * dispatcher that drives the simulated GPU.
 *
 * A plan is an ordered list of steps. Each step covers one or more
 * graph nodes (fusion collapses several nodes into one kernel), carries
 * a stream assignment, and may be marked for fine-grained profiling.
 * The dispatch order must be a valid topological order of the covered
 * nodes; the dispatcher adds cross-stream event synchronization.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "kernels/cost.h"

namespace astra {

/** What kind of kernel a plan step lowers to. */
enum class StepKind
{
    Single,            ///< one graph node, one kernel
    FusedGemm,         ///< batched GEMM over sibling MatMul nodes
    LadderGemm,        ///< accumulation ladder: C = sum_i A_i * B_i
    FusedElementwise,  ///< chain of elementwise nodes in one kernel
    CompoundRnn,       ///< cuDNN-style whole-layer kernel (baselines)
    Barrier,           ///< cross-stream synchronization (super-epoch edge)
};

/** One dispatchable unit. */
struct PlanStep
{
    StepKind kind = StepKind::Single;

    /**
     * Graph nodes covered by this step, in execution order. For
     * FusedGemm these are the MatMul nodes; for LadderGemm the MatMuls
     * followed by the Add nodes they accumulate through; for
     * FusedElementwise the chain in dataflow order.
     */
    std::vector<NodeId> nodes;

    /** GEMM library for Single-MatMul / FusedGemm / LadderGemm steps. */
    GemmLib lib = GemmLib::Cublas;

    /** How FusedGemm/LadderGemm members combine (one-large vs batched). */
    FusionAxis fused_axis = FusionAxis::Batched;

    /** Stream the step is dispatched on. */
    int stream = 0;

    /** Record events around this step and report under profile_key. */
    bool profile = false;
    std::string profile_key;

    /**
     * Stream-scheduling metric (paper §4.7): report, under profile_key,
     * the time from the most recent barrier to this step's completion,
     * maximized over all steps sharing the key.
     */
    bool epoch_metric = false;

    /** For CompoundRnn: precomputed cost of the compound kernel. */
    KernelCost compound_cost;
    /** For CompoundRnn: label. */
    std::string compound_name;

    /**
     * Additional serial setup charged to this step's kernel. The
     * XLA-like baseline uses it to model host round-trips around
     * embedding ops (paper §6.6).
     */
    double extra_setup_ns = 0.0;
};

/** A complete schedule for one mini-batch. */
struct ExecutionPlan
{
    std::vector<PlanStep> steps;

    /** Number of streams the plan uses (stream ids are [0, n)). */
    int num_streams = 1;
};

}  // namespace astra
