#include "runtime/plan_utils.h"

#include <set>

#include "support/logging.h"

namespace astra {

std::vector<PlanStep>
topo_sort_steps(std::vector<PlanStep> steps, const Graph& graph)
{
    const size_t num_steps = steps.size();
    std::vector<int> covered(static_cast<size_t>(graph.size()), -1);
    for (size_t si = 0; si < num_steps; ++si)
        for (NodeId id : steps[si].nodes)
            covered[static_cast<size_t>(id)] = static_cast<int>(si);

    std::vector<std::vector<size_t>> consumers(num_steps);
    std::vector<int> indegree(num_steps, 0);
    for (size_t si = 0; si < num_steps; ++si) {
        std::set<size_t> deps;
        for (NodeId id : steps[si].nodes)
            for (NodeId in : graph.node(id).inputs) {
                const int p = covered[static_cast<size_t>(in)];
                if (p >= 0 && static_cast<size_t>(p) != si)
                    deps.insert(static_cast<size_t>(p));
            }
        for (size_t d : deps) {
            consumers[d].push_back(si);
            ++indegree[si];
        }
    }

    auto anchor = [&](size_t si) {
        NodeId a = -1;
        for (NodeId id : steps[si].nodes)
            a = std::max(a, id);
        return a;
    };
    std::set<std::pair<NodeId, size_t>> ready;
    for (size_t si = 0; si < num_steps; ++si)
        if (indegree[si] == 0)
            ready.insert({anchor(si), si});

    std::vector<PlanStep> ordered;
    ordered.reserve(num_steps);
    while (!ready.empty()) {
        const size_t si = ready.begin()->second;
        ready.erase(ready.begin());
        ordered.push_back(std::move(steps[si]));
        for (size_t c : consumers[si])
            if (--indegree[c] == 0)
                ready.insert({anchor(c), c});
    }
    ASTRA_ASSERT(ordered.size() == num_steps,
                 "step partition induces a dependency cycle");
    return ordered;
}

}  // namespace astra
