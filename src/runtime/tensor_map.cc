#include "runtime/tensor_map.h"

#include <algorithm>
#include <map>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

namespace {

/** run_of[node] = index of the adjacency run containing it, or -1. */
std::vector<int>
index_runs(const Graph& graph, const std::vector<AdjacencyRun>& runs)
{
    std::vector<int> run_of(static_cast<size_t>(graph.size()), -1);
    for (size_t r = 0; r < runs.size(); ++r) {
        ASTRA_ASSERT(!runs[r].members.empty(), "empty adjacency run");
        for (NodeId id : runs[r].members) {
            ASTRA_ASSERT(run_of[static_cast<size_t>(id)] == -1,
                         "node %", id, " appears in two adjacency runs; "
                         "conflict resolution should have prevented this");
            run_of[static_cast<size_t>(id)] = static_cast<int>(r);
        }
    }
    return run_of;
}

}  // namespace

TensorMap::TensorMap(const Graph& graph, SimMemory& mem,
                     const std::vector<AdjacencyRun>& runs,
                     MemoryPlanMode mode)
    : graph_(&graph), mem_(&mem),
      ptrs_(static_cast<size_t>(graph.size()), kNullDev)
{
    obs::ScopedSpan span(obs::Category::Alloc, "tensor_map.plan");
    if (mode == MemoryPlanMode::Bump)
        plan_bump(runs);
    else
        plan_reuse(runs);
    obs::counter("alloc.tensor_maps").add();
    obs::counter("alloc.bytes_planned").add(peak_bytes_);
}

void
TensorMap::plan_bump(const std::vector<AdjacencyRun>& runs)
{
    const Graph& graph = *graph_;
    const std::vector<int> run_of = index_runs(graph, runs);
    std::vector<bool> run_done(runs.size(), false);
    for (const Node& n : graph.nodes()) {
        if (ptrs_[static_cast<size_t>(n.id)] != kNullDev)
            continue;
        const int r = run_of[static_cast<size_t>(n.id)];
        if (r < 0) {
            ptrs_[static_cast<size_t>(n.id)] =
                mem_->allocate(static_cast<int64_t>(n.desc.bytes()));
            peak_bytes_ = mem_->used();
            continue;
        }
        // First member of the run reached: lay the whole run out
        // back-to-back, in run order, as a single block.
        ASTRA_ASSERT(!run_done[static_cast<size_t>(r)]);
        run_done[static_cast<size_t>(r)] = true;
        int64_t total = 0;
        for (NodeId m : runs[static_cast<size_t>(r)].members)
            total += static_cast<int64_t>(graph.node(m).desc.bytes());
        DevPtr base = mem_->allocate(total);
        for (NodeId m : runs[static_cast<size_t>(r)].members) {
            ptrs_[static_cast<size_t>(m)] = base;
            base += static_cast<int64_t>(graph.node(m).desc.bytes());
        }
        peak_bytes_ = mem_->used();
    }
}

void
TensorMap::plan_reuse(const std::vector<AdjacencyRun>& runs)
{
    const Graph& graph = *graph_;
    const size_t n = static_cast<size_t>(graph.size());
    const std::vector<int> run_of = index_runs(graph, runs);

    // One tensor map serves *every* plan the wirer dispatches over it,
    // and tuned plans reorder execution (fused groups run all their
    // members' kernels at one point; streams interleave). Id-interval
    // liveness is only sound for the plain node-order schedule, so
    // reuse is gated on data dependencies instead: a freed region may
    // be taken by a unit only when every last reader of the old
    // contents is an *ancestor* of every member of the new unit — then
    // any legal schedule, fused or streamed, orders the old reads
    // before the new writes.
    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> anc(n * words, 0);
    for (const Node& node : graph.nodes()) {
        const size_t row = static_cast<size_t>(node.id) * words;
        for (NodeId in : node.inputs) {
            const size_t irow = static_cast<size_t>(in) * words;
            for (size_t w = 0; w < words; ++w)
                anc[row + w] |= anc[irow + w];
            anc[row + static_cast<size_t>(in) / 64] |=
                uint64_t{1} << (static_cast<size_t>(in) % 64);
        }
    }
    const auto is_ancestor = [&](NodeId a, NodeId of) {
        return (anc[static_cast<size_t>(of) * words +
                    static_cast<size_t>(a) / 64] >>
                (static_cast<size_t>(a) % 64)) &
               1u;
    };

    std::vector<std::vector<NodeId>> consumers(n);
    for (const Node& node : graph.nodes())
        for (NodeId in : node.inputs)
            consumers[static_cast<size_t>(in)].push_back(node.id);
    std::vector<bool> is_output(n, false);
    for (NodeId out : graph.outputs())
        is_output[static_cast<size_t>(out)] = true;

    // Allocation units: single nodes or whole runs. Units containing a
    // source node are *pinned*: sources are bound with data before
    // execution starts, so their lifetime begins at time zero — they
    // must never steal a recycled region. Units containing an output
    // live to the end of the step (the caller reads them afterwards).
    struct Unit
    {
        std::vector<NodeId> members;
        /** Nodes that must precede any overwrite of this unit's
            region: the members' last readers (the members themselves
            when unread). */
        std::vector<NodeId> guards;
        int64_t bytes = 0;
        bool pinned = false;
        bool immortal = false;
    };
    std::vector<Unit> units;
    std::vector<bool> run_done(runs.size(), false);
    for (const Node& node : graph.nodes()) {
        const int r = run_of[static_cast<size_t>(node.id)];
        Unit u;
        if (r < 0) {
            u.members = {node.id};
        } else {
            if (run_done[static_cast<size_t>(r)])
                continue;
            run_done[static_cast<size_t>(r)] = true;
            u.members = runs[static_cast<size_t>(r)].members;
        }
        for (NodeId m : u.members) {
            u.bytes += static_cast<int64_t>(graph.node(m).desc.bytes());
            u.pinned |= op_is_source(graph.node(m).kind);
            u.immortal |= is_output[static_cast<size_t>(m)];
            const std::vector<NodeId>& cs =
                consumers[static_cast<size_t>(m)];
            if (cs.empty())
                u.guards.push_back(m);
            else
                u.guards.insert(u.guards.end(), cs.begin(), cs.end());
        }
        std::sort(u.guards.begin(), u.guards.end());
        u.guards.erase(std::unique(u.guards.begin(), u.guards.end()),
                       u.guards.end());
        units.push_back(std::move(u));
    }
    // Pinned units first: they grab fresh space at the bottom of the
    // arena and never participate in hole recycling.
    std::stable_sort(units.begin(), units.end(),
                     [](const Unit& a, const Unit& b) {
                         return a.pinned > b.pinned;
                     });

    // First-fit free-list planning over virtual offsets. Each hole
    // carries the guard nodes of whatever last occupied it; a unit may
    // take a hole only when every guard is an ancestor of every
    // member. Holes are kept unmerged (coalescing would union guard
    // sets and over-constrain); instead an allocation may span several
    // *contiguous* holes, each checked against its own guards.
    constexpr int64_t kAlign = 256;
    struct Hole
    {
        int64_t offset;
        int64_t size;
        std::vector<NodeId> guards;
    };
    std::vector<Hole> holes;  // sorted by offset, non-overlapping
    int64_t high_water = 0;
    std::vector<int64_t> unit_offset(units.size(), -1);

    for (size_t ui = 0; ui < units.size(); ++ui) {
        const Unit& u = units[ui];
        const int64_t want = (u.bytes + kAlign - 1) / kAlign * kAlign;
        const auto safe_for = [&](const Hole& h) {
            for (NodeId g : h.guards)
                for (NodeId m : u.members)
                    if (!is_ancestor(g, m))
                        return false;
            return true;
        };
        // First fit over contiguous safe spans of holes.
        int64_t offset = -1;
        for (size_t i = 0; i < holes.size() && offset < 0; ++i) {
            if (!safe_for(holes[i]))
                continue;
            int64_t have = holes[i].size;
            size_t j = i;
            while (have < want && j + 1 < holes.size() &&
                   holes[j].offset + holes[j].size ==
                       holes[j + 1].offset &&
                   safe_for(holes[j + 1])) {
                ++j;
                have += holes[j].size;
            }
            if (have < want)
                continue;
            offset = holes[i].offset;
            // Consume holes i..j-1 fully and the front of hole j.
            int64_t remaining = want - (have - holes[j].size);
            holes[j].offset += remaining;
            holes[j].size -= remaining;
            auto last = holes.begin() + static_cast<int64_t>(j) +
                        (holes[j].size == 0 ? 1 : 0);
            holes.erase(holes.begin() + static_cast<int64_t>(i), last);
        }
        if (offset < 0) {
            offset = high_water;
            high_water += want;
        }
        unit_offset[ui] = offset;
        // The region becomes recyclable immediately — the guard set is
        // what keeps any future occupant ordered after this unit's
        // last readers.
        if (!u.pinned && !u.immortal) {
            Hole h{offset, want, u.guards};
            holes.insert(std::lower_bound(
                             holes.begin(), holes.end(), h,
                             [](const Hole& a, const Hole& b) {
                                 return a.offset < b.offset;
                             }),
                         std::move(h));
        }
    }

    peak_bytes_ = high_water;
    const DevPtr arena = mem_->allocate(high_water);
    for (size_t ui = 0; ui < units.size(); ++ui) {
        DevPtr p = arena + unit_offset[ui];
        for (NodeId m : units[ui].members) {
            ptrs_[static_cast<size_t>(m)] = p;
            p += static_cast<int64_t>(graph_->node(m).desc.bytes());
        }
    }
}

DevPtr
TensorMap::ptr(NodeId id) const
{
    ASTRA_ASSERT(id >= 0 && id < graph_->size());
    const DevPtr p = ptrs_[static_cast<size_t>(id)];
    ASTRA_ASSERT(p != kNullDev, "node %", id, " has no allocation");
    return p;
}

float*
TensorMap::f32(NodeId id) const
{
    return mem_->f32(ptr(id));
}

int32_t*
TensorMap::i32(NodeId id) const
{
    return mem_->i32(ptr(id));
}

bool
TensorMap::adjacent(const std::vector<NodeId>& members) const
{
    for (size_t i = 0; i + 1 < members.size(); ++i) {
        const Node& cur = graph_->node(members[i]);
        if (!SimMemory::adjacent(ptr(members[i]),
                                 static_cast<int64_t>(cur.desc.bytes()),
                                 ptr(members[i + 1])))
            return false;
    }
    return true;
}

}  // namespace astra
