#include "runtime/tensor_map.h"

#include <algorithm>
#include <map>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

namespace {

/** run_of[node] = index of the adjacency run containing it, or -1. */
std::vector<int>
index_runs(const Graph& graph, const std::vector<AdjacencyRun>& runs)
{
    std::vector<int> run_of(static_cast<size_t>(graph.size()), -1);
    for (size_t r = 0; r < runs.size(); ++r) {
        ASTRA_ASSERT(!runs[r].members.empty(), "empty adjacency run");
        for (NodeId id : runs[r].members) {
            ASTRA_ASSERT(run_of[static_cast<size_t>(id)] == -1,
                         "node %", id, " appears in two adjacency runs; "
                         "conflict resolution should have prevented this");
            run_of[static_cast<size_t>(id)] = static_cast<int>(r);
        }
    }
    return run_of;
}

}  // namespace

TensorMap::TensorMap(const Graph& graph, SimMemory& mem,
                     const std::vector<AdjacencyRun>& runs,
                     MemoryPlanMode mode)
    : graph_(&graph), mem_(&mem),
      ptrs_(static_cast<size_t>(graph.size()), kNullDev)
{
    obs::ScopedSpan span(obs::Category::Alloc, "tensor_map.plan");
    if (mode == MemoryPlanMode::Bump)
        plan_bump(runs);
    else
        plan_reuse(runs);
    obs::counter("alloc.tensor_maps").add();
    obs::counter("alloc.bytes_planned").add(peak_bytes_);
}

void
TensorMap::plan_bump(const std::vector<AdjacencyRun>& runs)
{
    const Graph& graph = *graph_;
    const std::vector<int> run_of = index_runs(graph, runs);
    std::vector<bool> run_done(runs.size(), false);
    for (const Node& n : graph.nodes()) {
        if (ptrs_[static_cast<size_t>(n.id)] != kNullDev)
            continue;
        const int r = run_of[static_cast<size_t>(n.id)];
        if (r < 0) {
            ptrs_[static_cast<size_t>(n.id)] =
                mem_->allocate(static_cast<int64_t>(n.desc.bytes()));
            peak_bytes_ = mem_->used();
            continue;
        }
        // First member of the run reached: lay the whole run out
        // back-to-back, in run order, as a single block.
        ASTRA_ASSERT(!run_done[static_cast<size_t>(r)]);
        run_done[static_cast<size_t>(r)] = true;
        int64_t total = 0;
        for (NodeId m : runs[static_cast<size_t>(r)].members)
            total += static_cast<int64_t>(graph.node(m).desc.bytes());
        DevPtr base = mem_->allocate(total);
        for (NodeId m : runs[static_cast<size_t>(r)].members) {
            ptrs_[static_cast<size_t>(m)] = base;
            base += static_cast<int64_t>(graph.node(m).desc.bytes());
        }
        peak_bytes_ = mem_->used();
    }
}

void
TensorMap::plan_reuse(const std::vector<AdjacencyRun>& runs)
{
    const Graph& graph = *graph_;
    const std::vector<int> run_of = index_runs(graph, runs);
    const NodeId never = graph.size();  // sentinel: live to the end

    // Lifetime end of every node's buffer (node order = execution
    // order for the single-stream framework schedule this models).
    std::vector<NodeId> last_use(static_cast<size_t>(graph.size()), 0);
    for (const Node& n : graph.nodes()) {
        last_use[static_cast<size_t>(n.id)] = n.id;
        for (NodeId in : n.inputs)
            last_use[static_cast<size_t>(in)] =
                std::max(last_use[static_cast<size_t>(in)], n.id);
    }
    for (const Node& n : graph.nodes())
        if (op_is_source(n.kind))
            last_use[static_cast<size_t>(n.id)] = never;
    for (NodeId out : graph.outputs())
        last_use[static_cast<size_t>(out)] = never;

    // Allocation units: single nodes or whole runs (lifetime = union).
    // Units containing a source node are *pinned*: sources are bound
    // with data before execution starts, so their lifetime begins at
    // time zero — they must never steal a hole freed mid-execution.
    struct Unit
    {
        std::vector<NodeId> members;
        int64_t bytes = 0;
        NodeId def = 0;
        NodeId end = 0;
        bool pinned = false;
    };
    std::vector<Unit> units;
    std::vector<bool> run_done(runs.size(), false);
    for (const Node& n : graph.nodes()) {
        const int r = run_of[static_cast<size_t>(n.id)];
        if (r < 0) {
            units.push_back({{n.id},
                             static_cast<int64_t>(n.desc.bytes()), n.id,
                             last_use[static_cast<size_t>(n.id)],
                             op_is_source(n.kind)});
            continue;
        }
        if (run_done[static_cast<size_t>(r)])
            continue;
        run_done[static_cast<size_t>(r)] = true;
        Unit u;
        u.def = n.id;
        for (NodeId m : runs[static_cast<size_t>(r)].members) {
            u.members.push_back(m);
            u.bytes += static_cast<int64_t>(graph.node(m).desc.bytes());
            u.end = std::max(u.end, last_use[static_cast<size_t>(m)]);
            u.pinned |= op_is_source(graph.node(m).kind);
        }
        units.push_back(std::move(u));
    }
    // Pinned units first: they grab fresh space at the bottom of the
    // arena and never participate in hole recycling.
    std::stable_sort(units.begin(), units.end(),
                     [](const Unit& a, const Unit& b) {
                         return a.pinned > b.pinned;
                     });

    // First-fit free-list planning over virtual offsets.
    constexpr int64_t kAlign = 256;
    struct Hole
    {
        int64_t offset;
        int64_t size;
    };
    std::vector<Hole> holes;
    int64_t high_water = 0;
    // expiring[end node] -> list of (offset, size) to free.
    std::map<NodeId, std::vector<Hole>> expiring;
    std::vector<int64_t> unit_offset(units.size(), -1);

    auto free_hole = [&](Hole h) {
        // Insert sorted by offset and coalesce neighbors.
        auto it = std::lower_bound(
            holes.begin(), holes.end(), h,
            [](const Hole& a, const Hole& b) {
                return a.offset < b.offset;
            });
        it = holes.insert(it, h);
        if (it + 1 != holes.end() &&
            it->offset + it->size == (it + 1)->offset) {
            it->size += (it + 1)->size;
            holes.erase(it + 1);
        }
        if (it != holes.begin() &&
            (it - 1)->offset + (it - 1)->size == it->offset) {
            (it - 1)->size += it->size;
            it = holes.erase(it) - 1;
        }
    };

    for (size_t ui = 0; ui < units.size(); ++ui) {
        const Unit& u = units[ui];
        // Release everything that died before this unit's definition.
        for (auto it = expiring.begin();
             it != expiring.end() && it->first < u.def;) {
            for (const Hole& h : it->second)
                free_hole(h);
            it = expiring.erase(it);
        }
        const int64_t want = (u.bytes + kAlign - 1) / kAlign * kAlign;
        int64_t offset = -1;
        for (auto it = holes.begin(); it != holes.end(); ++it) {
            if (it->size >= want) {
                offset = it->offset;
                it->offset += want;
                it->size -= want;
                if (it->size == 0)
                    holes.erase(it);
                break;
            }
        }
        if (offset < 0) {
            offset = high_water;
            high_water += want;
        }
        unit_offset[ui] = offset;
        if (!u.pinned && u.end != never)
            expiring[u.end].push_back({offset, want});
    }

    peak_bytes_ = high_water;
    const DevPtr arena = mem_->allocate(high_water);
    for (size_t ui = 0; ui < units.size(); ++ui) {
        DevPtr p = arena + unit_offset[ui];
        for (NodeId m : units[ui].members) {
            ptrs_[static_cast<size_t>(m)] = p;
            p += static_cast<int64_t>(graph_->node(m).desc.bytes());
        }
    }
}

DevPtr
TensorMap::ptr(NodeId id) const
{
    ASTRA_ASSERT(id >= 0 && id < graph_->size());
    const DevPtr p = ptrs_[static_cast<size_t>(id)];
    ASTRA_ASSERT(p != kNullDev, "node %", id, " has no allocation");
    return p;
}

float*
TensorMap::f32(NodeId id) const
{
    return mem_->f32(ptr(id));
}

int32_t*
TensorMap::i32(NodeId id) const
{
    return mem_->i32(ptr(id));
}

bool
TensorMap::adjacent(const std::vector<NodeId>& members) const
{
    for (size_t i = 0; i + 1 < members.size(); ++i) {
        const Node& cur = graph_->node(members[i]);
        if (!SimMemory::adjacent(ptr(members[i]),
                                 static_cast<int64_t>(cur.desc.bytes()),
                                 ptr(members[i + 1])))
            return false;
    }
    return true;
}

}  // namespace astra
