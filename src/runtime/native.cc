#include "runtime/native.h"

#include "graph/op.h"

namespace astra {

ExecutionPlan
native_plan(const Graph& graph, GemmLib default_lib)
{
    ExecutionPlan plan;
    plan.num_streams = 1;
    for (const Node& n : graph.nodes()) {
        if (op_is_source(n.kind))
            continue;
        PlanStep step;
        step.kind = StepKind::Single;
        step.nodes = {n.id};
        step.lib = default_lib;
        step.stream = 0;
        plan.steps.push_back(std::move(step));
    }
    return plan;
}

}  // namespace astra
