/**
 * @file
 * The "native framework" baseline (PyTorch / TensorFlow in the paper):
 * one kernel per graph node, dispatched in dataflow order on a single
 * stream, using the default (cuBLAS) GEMM library everywhere.
 */
#pragma once

#include "runtime/plan.h"

namespace astra {

/** Build the native single-stream, one-kernel-per-node plan. */
ExecutionPlan native_plan(const Graph& graph,
                          GemmLib default_lib = GemmLib::Cublas);

}  // namespace astra
