#include "runtime/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "support/logging.h"
#include "tensor/math.h"

namespace astra {

GemmShape
matmul_shape(const Graph& graph, const Node& node)
{
    ASTRA_ASSERT(node.is_matmul());
    const Node& a = graph.node(node.inputs[0]);
    GemmShape s;
    s.m = node.desc.shape.rows();
    s.n = node.desc.shape.cols();
    s.k = node.trans_a ? a.desc.shape.rows() : a.desc.shape.cols();
    return s;
}

namespace {

/** Extra per-element arithmetic cost of a node, for the cost model. */
double
node_flops_per_elem(OpKind kind)
{
    switch (kind) {
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Softmax:
      case OpKind::CrossEntropy:
      case OpKind::CrossEntropyGrad:
        return 8.0;
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::ReluGrad:
      case OpKind::SoftmaxGrad:
        return 4.0;
      default:
        return 1.0;
    }
}

/** HBM passes (tensors read + written) of a standalone node. */
int
node_passes(const Node& node)
{
    switch (node.kind) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::BiasAdd:
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::ReluGrad:
        return 3;
      case OpKind::SoftmaxGrad:
        return 4;
      case OpKind::CrossEntropyGrad:
        return 3;
      case OpKind::Softmax:
        return 3;
      default:
        return 2;
    }
}

/** Element count that the node's kernel streams over. */
int64_t
node_stream_numel(const Graph& graph, const Node& node)
{
    switch (node.kind) {
      case OpKind::SumRows:
      case OpKind::Softmax:
      case OpKind::SoftmaxGrad:
      case OpKind::CrossEntropy:
      case OpKind::CrossEntropyGrad:
        return graph.node(node.inputs[0]).desc.shape.numel();
      case OpKind::EmbeddingGrad:
        // Zero the table gradient, then scatter the output grads.
        return node.desc.shape.numel() +
               graph.node(node.inputs[0]).desc.shape.numel();
      default:
        return node.desc.shape.numel();
    }
}

/** Device cost of a standalone (non-MatMul) node. */
KernelCost
node_cost(const Graph& graph, const Node& node, const GpuConfig& cfg)
{
    return elementwise_cost(node_stream_numel(graph, node),
                            node_passes(node), cfg,
                            node_flops_per_elem(node.kind));
}

}  // namespace

std::function<void()>
make_node_compute(const Graph& graph, NodeId id, const TensorMap& tmap)
{
    const Node& n = graph.node(id);
    switch (n.kind) {
      case OpKind::Input:
      case OpKind::InputIds:
      case OpKind::Param:
        return {};  // sources carry data, not computation
      case OpKind::MatMul: {
        const GemmShape s = matmul_shape(graph, n);
        const float* a = tmap.f32(n.inputs[0]);
        const float* b = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const bool ta = n.trans_a, tb = n.trans_b;
        return [=] { math::gemm(a, ta, b, tb, c, s.m, s.n, s.k, false); };
      }
      case OpKind::Add: {
        const float* a = tmap.f32(n.inputs[0]);
        const float* b = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::add(a, b, c, numel); };
      }
      case OpKind::Sub: {
        const float* a = tmap.f32(n.inputs[0]);
        const float* b = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::sub(a, b, c, numel); };
      }
      case OpKind::Mul: {
        const float* a = tmap.f32(n.inputs[0]);
        const float* b = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::mul(a, b, c, numel); };
      }
      case OpKind::Sigmoid: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::sigmoid(a, c, numel); };
      }
      case OpKind::Tanh: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::tanh(a, c, numel); };
      }
      case OpKind::Relu: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::relu(a, c, numel); };
      }
      case OpKind::Scale: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const float s = n.scalar;
        const int64_t numel = n.desc.shape.numel();
        return [=] { math::scale(a, s, c, numel); };
      }
      case OpKind::OneMinus: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] {
            for (int64_t i = 0; i < numel; ++i)
                c[i] = 1.0f - a[i];
        };
      }
      case OpKind::BiasAdd: {
        const float* a = tmap.f32(n.inputs[0]);
        const float* bias = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = n.desc.shape.rows();
        const int64_t cols = n.desc.shape.cols();
        return [=] {
            for (int64_t r = 0; r < rows; ++r)
                for (int64_t col = 0; col < cols; ++col)
                    c[r * cols + col] = a[r * cols + col] + bias[col];
        };
      }
      case OpKind::SumRows: {
        const Node& in = graph.node(n.inputs[0]);
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t rows = in.desc.shape.rows();
        const int64_t cols = in.desc.shape.cols();
        return [=] {
            for (int64_t col = 0; col < cols; ++col)
                c[col] = 0.0f;
            for (int64_t r = 0; r < rows; ++r)
                for (int64_t col = 0; col < cols; ++col)
                    c[col] += a[r * cols + col];
        };
      }
      case OpKind::Concat: {
        const int64_t rows = n.desc.shape.rows();
        const int64_t out_cols = n.desc.shape.cols();
        float* c = tmap.f32(n.id);
        std::vector<const float*> parts;
        std::vector<int64_t> widths;
        for (NodeId p : n.inputs) {
            parts.push_back(tmap.f32(p));
            widths.push_back(graph.node(p).desc.shape.cols());
        }
        return [=] {
            int64_t off = 0;
            for (size_t p = 0; p < parts.size(); ++p) {
                for (int64_t r = 0; r < rows; ++r)
                    std::memcpy(c + r * out_cols + off,
                                parts[p] + r * widths[p],
                                static_cast<size_t>(widths[p]) *
                                    sizeof(float));
                off += widths[p];
            }
        };
      }
      case OpKind::Slice: {
        const Node& in = graph.node(n.inputs[0]);
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t rows = n.desc.shape.rows();
        const int64_t in_cols = in.desc.shape.cols();
        const int64_t off = n.offset;
        const int64_t len = n.length;
        return [=] {
            for (int64_t r = 0; r < rows; ++r)
                std::memcpy(c + r * len, a + r * in_cols + off,
                            static_cast<size_t>(len) * sizeof(float));
        };
      }
      case OpKind::Copy: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] {
            std::memcpy(c, a, static_cast<size_t>(numel) * sizeof(float));
        };
      }
      case OpKind::Embedding: {
        const float* table = tmap.f32(n.inputs[0]);
        const int32_t* ids = tmap.i32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = n.desc.shape.rows();
        const int64_t width = n.desc.shape.cols();
        return [=] { math::embedding(table, ids, c, rows, width); };
      }
      case OpKind::EmbeddingGrad: {
        const Node& dy_node = graph.node(n.inputs[0]);
        const float* dy = tmap.f32(n.inputs[0]);
        const int32_t* ids = tmap.i32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = dy_node.desc.shape.rows();
        const int64_t width = n.desc.shape.cols();
        const int64_t table_numel = n.desc.shape.numel();
        return [=] {
            for (int64_t i = 0; i < table_numel; ++i)
                c[i] = 0.0f;
            for (int64_t r = 0; r < rows; ++r) {
                float* dst = c + static_cast<int64_t>(ids[r]) * width;
                for (int64_t i = 0; i < width; ++i)
                    dst[i] += dy[r * width + i];
            }
        };
      }
      case OpKind::Softmax: {
        const float* a = tmap.f32(n.inputs[0]);
        float* c = tmap.f32(n.id);
        const int64_t rows = n.desc.shape.rows();
        const int64_t cols = n.desc.shape.cols();
        return [=] { math::softmax_rows(a, c, rows, cols); };
      }
      case OpKind::SoftmaxGrad: {
        const float* dy = tmap.f32(n.inputs[0]);
        const float* y = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = n.desc.shape.rows();
        const int64_t cols = n.desc.shape.cols();
        return [=] {
            for (int64_t r = 0; r < rows; ++r) {
                double dot = 0.0;
                for (int64_t i = 0; i < cols; ++i)
                    dot += static_cast<double>(dy[r * cols + i]) *
                           y[r * cols + i];
                for (int64_t i = 0; i < cols; ++i)
                    c[r * cols + i] =
                        y[r * cols + i] *
                        (dy[r * cols + i] - static_cast<float>(dot));
            }
        };
      }
      case OpKind::CrossEntropy: {
        const Node& logits = graph.node(n.inputs[0]);
        const float* a = tmap.f32(n.inputs[0]);
        const int32_t* ids = tmap.i32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = logits.desc.shape.rows();
        const int64_t cols = logits.desc.shape.cols();
        return [=] {
            double total = 0.0;
            for (int64_t r = 0; r < rows; ++r) {
                const float* row = a + r * cols;
                float mx = row[0];
                for (int64_t i = 1; i < cols; ++i)
                    mx = std::max(mx, row[i]);
                double sum = 0.0;
                for (int64_t i = 0; i < cols; ++i)
                    sum += std::exp(static_cast<double>(row[i] - mx));
                total += std::log(sum) + mx - row[ids[r]];
            }
            c[0] = static_cast<float>(total / static_cast<double>(rows));
        };
      }
      case OpKind::CrossEntropyGrad: {
        const Node& logits = graph.node(n.inputs[0]);
        const float* a = tmap.f32(n.inputs[0]);
        const int32_t* ids = tmap.i32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t rows = logits.desc.shape.rows();
        const int64_t cols = logits.desc.shape.cols();
        return [=] {
            math::softmax_rows(a, c, rows, cols);
            const float inv = 1.0f / static_cast<float>(rows);
            for (int64_t r = 0; r < rows; ++r) {
                for (int64_t i = 0; i < cols; ++i)
                    c[r * cols + i] *= inv;
                c[r * cols + ids[r]] -= inv;
            }
        };
      }
      case OpKind::SigmoidGrad: {
        const float* dy = tmap.f32(n.inputs[0]);
        const float* y = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] {
            for (int64_t i = 0; i < numel; ++i)
                c[i] = dy[i] * y[i] * (1.0f - y[i]);
        };
      }
      case OpKind::TanhGrad: {
        const float* dy = tmap.f32(n.inputs[0]);
        const float* y = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] {
            for (int64_t i = 0; i < numel; ++i)
                c[i] = dy[i] * (1.0f - y[i] * y[i]);
        };
      }
      case OpKind::ReluGrad: {
        const float* dy = tmap.f32(n.inputs[0]);
        const float* y = tmap.f32(n.inputs[1]);
        float* c = tmap.f32(n.id);
        const int64_t numel = n.desc.shape.numel();
        return [=] {
            for (int64_t i = 0; i < numel; ++i)
                c[i] = y[i] > 0.0f ? dy[i] : 0.0f;
        };
      }
    }
    panic("no compute rule for ", op_name(n.kind));
}

int
fused_elementwise_passes(const PlanStep& step, const Graph& graph)
{
    std::set<NodeId> covered(step.nodes.begin(), step.nodes.end());
    std::set<NodeId> external_inputs;
    int external_outputs = 0;
    for (NodeId id : step.nodes) {
        const Node& n = graph.node(id);
        for (NodeId in : n.inputs)
            if (!covered.count(in))
                external_inputs.insert(in);
        bool escapes = false;
        for (NodeId user : graph.users(id))
            if (!covered.count(user))
                escapes = true;
        if (escapes || graph.user_count(id) == 0)
            ++external_outputs;
    }
    return static_cast<int>(external_inputs.size()) +
           std::max(external_outputs, 1);
}

namespace {

KernelDesc
build_step_kernel_impl(const PlanStep& step, const Graph& graph,
                       const TensorMap& tmap, const GpuConfig& cfg)
{
    ASTRA_ASSERT(!step.nodes.empty() || step.kind == StepKind::Barrier);
    KernelDesc k;
    switch (step.kind) {
      case StepKind::Single: {
        const Node& n = graph.node(step.nodes[0]);
        std::ostringstream name;
        name << op_name(n.kind) << ".%" << n.id;
        if (n.is_matmul()) {
            const KernelCost cost =
                gemm_cost(step.lib, matmul_shape(graph, n), cfg);
            k.blocks = cost.blocks;
            k.block_ns = cost.block_ns;
            k.setup_ns = cost.setup_ns;
            k.max_sms = cost.max_sms;
            name << "." << gemm_lib_name(step.lib);
        } else {
            const KernelCost cost = node_cost(graph, n, cfg);
            k.blocks = cost.blocks;
            k.block_ns = cost.block_ns;
            k.setup_ns = cost.setup_ns;
            k.max_sms = cost.max_sms;
        }
        k.name = name.str();
        if (cfg.execute_kernels)
            k.compute = make_node_compute(graph, n.id, tmap);
        return k;
      }
      case StepKind::FusedGemm: {
        const Node& first = graph.node(step.nodes[0]);
        const GemmShape shape = matmul_shape(graph, first);
        const KernelCost cost = fused_gemm_cost(
            step.lib, shape, static_cast<int64_t>(step.nodes.size()), cfg,
            step.fused_axis);
        k.blocks = cost.blocks;
        k.block_ns = cost.block_ns;
        k.setup_ns = cost.setup_ns;
        k.max_sms = cost.max_sms;
        std::ostringstream name;
        name << "fmm.x" << step.nodes.size() << ".%" << first.id << "."
             << gemm_lib_name(step.lib);
        k.name = name.str();
        for (NodeId id : step.nodes)
            ASTRA_ASSERT(graph.node(id).is_matmul());
        if (cfg.execute_kernels) {
            std::vector<std::function<void()>> subs;
            for (NodeId id : step.nodes)
                subs.push_back(make_node_compute(graph, id, tmap));
            k.compute = [subs = std::move(subs)] {
                for (const auto& f : subs)
                    f();
            };
        }
        return k;
      }
      case StepKind::LadderGemm: {
        // nodes = [mm_1 .. mm_N, add_1 .. add_{N-1}]; the final Add's
        // buffer receives the accumulated result. Each sub-GEMM is
        // evaluated in full before being added, preserving the exact
        // summation order of the unfused add chain.
        std::vector<NodeId> mms;
        for (NodeId id : step.nodes)
            if (graph.node(id).is_matmul())
                mms.push_back(id);
        ASTRA_ASSERT(mms.size() >= 2, "ladder needs >= 2 GEMMs");
        const Node& first = graph.node(mms[0]);
        const GemmShape shape = matmul_shape(graph, first);
        const KernelCost cost = fused_gemm_cost(
            step.lib, shape, static_cast<int64_t>(mms.size()), cfg,
            step.fused_axis);
        k.blocks = cost.blocks;
        k.block_ns = cost.block_ns;
        k.setup_ns = cost.setup_ns;
        k.max_sms = cost.max_sms;
        std::ostringstream name;
        name << "lmm.x" << mms.size() << ".%" << first.id << "."
             << gemm_lib_name(step.lib);
        k.name = name.str();
        if (!cfg.execute_kernels)
            return k;

        float* out = tmap.f32(step.nodes.back());
        const int64_t numel = first.desc.shape.numel();
        // A non-leading chunk of a longer ladder carries in the prior
        // chunk's partial sum: the first covered Add's left input is
        // outside this step.
        const float* base = nullptr;
        std::set<NodeId> covered(step.nodes.begin(), step.nodes.end());
        for (NodeId id : step.nodes) {
            const Node& n = graph.node(id);
            if (n.kind == OpKind::Add) {
                if (!covered.count(n.inputs[0]))
                    base = tmap.f32(n.inputs[0]);
                break;
            }
        }
        struct Sub
        {
            const float* a;
            const float* b;
            bool ta, tb;
            GemmShape s;
        };
        std::vector<Sub> subs;
        for (NodeId id : mms) {
            const Node& n = graph.node(id);
            subs.push_back({tmap.f32(n.inputs[0]), tmap.f32(n.inputs[1]),
                            n.trans_a, n.trans_b, matmul_shape(graph, n)});
        }
        k.compute = [out, numel, base, subs = std::move(subs)] {
            std::vector<float> tmp(static_cast<size_t>(numel));
            if (base != nullptr && base != out)
                std::copy(base, base + numel, out);
            for (size_t i = 0; i < subs.size(); ++i) {
                const Sub& s = subs[i];
                const bool direct = i == 0 && base == nullptr;
                float* dst = direct ? out : tmp.data();
                math::gemm(s.a, s.ta, s.b, s.tb, dst, s.s.m, s.s.n, s.s.k,
                           false);
                if (!direct)
                    math::add(out, tmp.data(), out, numel);
            }
        };
        return k;
      }
      case StepKind::FusedElementwise: {
        int64_t numel = 0;
        double flops = 0.0;
        for (NodeId id : step.nodes) {
            numel = std::max(numel, graph.node(id).desc.shape.numel());
            flops += node_flops_per_elem(graph.node(id).kind);
        }
        const KernelCost cost = elementwise_cost(
            numel, fused_elementwise_passes(step, graph), cfg, flops);
        k.blocks = cost.blocks;
        k.block_ns = cost.block_ns;
        k.setup_ns = cost.setup_ns;
        k.max_sms = cost.max_sms;
        std::ostringstream name;
        name << "few.x" << step.nodes.size() << ".%" << step.nodes[0];
        k.name = name.str();
        if (cfg.execute_kernels) {
            std::vector<std::function<void()>> subs;
            for (NodeId id : step.nodes)
                subs.push_back(make_node_compute(graph, id, tmap));
            k.compute = [subs = std::move(subs)] {
                for (const auto& f : subs)
                    f();
            };
        }
        return k;
      }
      case StepKind::CompoundRnn: {
        k.blocks = step.compound_cost.blocks;
        k.block_ns = step.compound_cost.block_ns;
        k.setup_ns = step.compound_cost.setup_ns;
        k.max_sms = step.compound_cost.max_sms;
        k.name = step.compound_name;
        if (cfg.execute_kernels) {
            std::vector<std::function<void()>> subs;
            for (NodeId id : step.nodes) {
                auto f = make_node_compute(graph, id, tmap);
                if (f)
                    subs.push_back(std::move(f));
            }
            k.compute = [subs = std::move(subs)] {
                for (const auto& f : subs)
                    f();
            };
        }
        return k;
      }
      case StepKind::Barrier:
        panic("Barrier steps have no kernel");
    }
    panic("unhandled step kind");
}

}  // namespace

KernelDesc
build_step_kernel(const PlanStep& step, const Graph& graph,
                  const TensorMap& tmap, const GpuConfig& cfg)
{
    KernelDesc k = build_step_kernel_impl(step, graph, tmap, cfg);
    k.setup_ns += step.extra_setup_ns;
    k.key = step.profile_key;
    if (!cfg.execute_kernels)
        k.compute = nullptr;  // timing-only sweeps skip closure work
    return k;
}

}  // namespace astra
