/**
 * @file
 * Data-parallel dispatch: one tuned plan replayed on N simulated
 * devices with measured ring-allreduce overlap.
 *
 * This is the execution layer under core/data_parallel.h: instead of
 * adding an analytic allreduce term to one device's compute time, the
 * plan is enqueued onto every device of a MultiSim, gradient tensors
 * are grouped into flush buckets in plan (backward) order, and each
 * bucket's ring allreduce is issued as 2(G-1) chunk-transfer kernels
 * on a dedicated comm stream per device, gated on the producing step's
 * completion event and on the upstream ring neighbour's progress
 * (mirrored cross-device events). Early buckets — the late-layer
 * gradients backward produces first — therefore reduce while the rest
 * of backward is still computing, and the resulting overlap is
 * *measured*, not modelled (paper §4: launch and measure).
 */
#pragma once

#include <string>
#include <vector>

#include "runtime/dispatcher.h"
#include "sim/multi.h"

namespace astra {

/** When a gradient bucket's allreduce is allowed to start. */
enum class FlushSchedule
{
    /** As soon as the bucket's last gradient-producing step completes
        (DDP-style overlap with the remaining backward compute). */
    Eager,

    /** Only after every plan step has completed — the serial
        compute-then-communicate baseline overlap is measured against. */
    EndOfStep,
};

/** Short display name ("eager" / "end"). */
std::string flush_schedule_name(FlushSchedule flush);

/** Data-parallel execution knobs for one dispatch. */
struct DpOptions
{
    /** Number of devices G (>= 1; 1 skips all communication). */
    int degree = 1;

    /** Ring interconnect between neighbouring devices. */
    LinkConfig link;

    /**
     * Gradient-bucket capacity in bytes: tensors are packed into a
     * bucket (in plan order) until it holds at least this much, then
     * the next tensor opens a new one. 0 = one bucket per gradient
     * tensor. Small buckets overlap more but pay 2(G-1) chunk launches
     * each; large buckets amortize launches but delay the first flush
     * — the trade-off the adaptive layer explores.
     */
    int64_t bucket_bytes = 0;

    FlushSchedule flush = FlushSchedule::Eager;

    /**
     * Straggler watchdog (MultiSim::set_straggler_timeout): a mirrored
     * ring event that left its receiver waiting longer than this marks
     * a straggler observation. 0 disables detection.
     */
    double straggler_timeout_ns = 0.0;

    /**
     * With Eager flush, this many straggler observations in one step
     * trigger the degraded mode: re-dispatch with the serial
     * (EndOfStep) schedule, whose single rendezvous tolerates a slow
     * link far better than the overlapped pipeline's 2(G-1) per-bucket
     * hops. Ignored when straggler_timeout_ns is 0.
     */
    int straggler_fallback_threshold = 3;

    /** Allow the serial fallback (off = detect and report only). */
    bool serial_fallback = true;
};

/** Measured outcome of one data-parallel mini-batch. */
struct DpResult
{
    /** Makespan across all devices (compute + exposed comm). */
    double step_ns = 0.0;

    /** When device 0's last compute-stream kernel finished. */
    double compute_ns = 0.0;

    /** Total link busy time on device 0's comm stream. */
    double comm_ns = 0.0;

    /** Communication hidden under compute:
        max(0, compute_ns + comm_ns - step_ns). */
    double overlap_ns = 0.0;

    /** Bytes each device moved over its link (all buckets, all hops). */
    double comm_bytes = 0.0;

    int num_buckets = 0;

    /** Straggler observations (all attempts, see DpOptions). */
    int64_t stragglers = 0;

    /** True when persistent stragglers forced the serial fallback. */
    bool fell_back_serial = false;
};

/**
 * Execute the plan on `opts.degree` fresh devices with ring-allreduce
 * of `grad_nodes` (the parameter-gradient graph nodes). All devices run
 * the identical plan — mini-batch predictability (§4.1) means the
 * per-device shapes match — so the dispatch is symmetric and timing-only
 * (kernel host callbacks are never executed; devices would otherwise
 * race on the shared TensorMap).
 */
DpResult dispatch_plan_dp(const ExecutionPlan& plan, const Graph& graph,
                          const TensorMap& tmap, const GpuConfig& cfg,
                          const std::vector<NodeId>& grad_nodes,
                          const DpOptions& opts);

}  // namespace astra
