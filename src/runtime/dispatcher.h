/**
 * @file
 * Drives an ExecutionPlan on the simulated GPU.
 *
 * This is the layer Astra interposes at (paper Fig. 3): it owns stream
 * creation, cross-stream event synchronization, barrier realization and
 * the cudaEvent-style profiling instrumentation. All backends (native,
 * XLA-like, cuDNN-path, Astra) dispatch through this one function, so
 * measured times are comparable across them.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/plan.h"
#include "runtime/tensor_map.h"
#include "sim/gpu.h"

namespace astra {

struct WiredProgram;  // runtime/wired.h

/** Timing results of one dispatched mini-batch. */
struct DispatchResult
{
    /** Makespan of the whole mini-batch in simulated ns. */
    double total_ns = 0.0;

    /**
     * Fine-grained measurements: profile_key -> summed elapsed ns
     * (for epoch_metric keys: max barrier-to-completion time).
     */
    std::map<std::string, double> profile_ns;

    /** Device counters accumulated during the run. */
    GpuStats stats;

    /**
     * Clock multiplier the device reported for this mini-batch (NVML
     * query; 1.0 at base clock). Measurement policies that normalize
     * for DVFS multiply measured spans by it (profile_index.h).
     */
    double clock_multiplier = 1.0;

    /** Kernel timeline (only when cfg.collect_trace is set). */
    std::vector<TraceSpan> trace;

    /**
     * True when the retry budget was exhausted and the final attempt
     * still contained an injected kernel fault — timing and tensor
     * values are suspect, and the wirer quarantines the measurement.
     */
    bool faulted = false;

    /** Abort-and-replay attempts taken after a faulted mini-batch. */
    int fault_attempts = 0;

    /** Injected kernel faults observed across all attempts. */
    int64_t faults_seen = 0;

    /** Injected straggler latency spikes across all attempts. */
    int64_t straggler_events = 0;

    /** Simulated exponential-backoff time spent between attempts. */
    double backoff_ns = 0.0;

    /**
     * Measured *wall-clock* host time spent enqueueing the mini-batch's
     * commands (dependency resolution, kernel construction and launch
     * calls; device simulation excluded) summed over retry attempts.
     * The one real-time field in this struct — it is what the compiled
     * dispatch path (runtime/wired.h) cuts, and what
     * bench/micro_dispatch_replay gates on.
     */
    double host_enqueue_ns = 0.0;
};

/**
 * Execute the plan on a fresh simulated device.
 *
 * The plan's step order must be a valid topological order of the
 * covered graph nodes (checked). Cross-stream data dependencies are
 * enforced with event record/wait pairs; same-stream dependencies rely
 * on FIFO order. Barrier steps synchronize all streams.
 *
 * The dispatch is a mini-batch *transaction*: when cfg.faults injects a
 * transient kernel fault, the whole mini-batch is aborted and replayed
 * on a fresh device (with exponential backoff, simulated and reported
 * in DispatchResult::backoff_ns) up to the plan's retry budget. Because
 * each replay re-executes the full plan in topological order over the
 * same TensorMap, a clean final attempt leaves tensor values exactly as
 * a fault-free run would — no partial-state corruption survives. Each
 * attempt re-draws faults under a salt derived from cfg.fault_salt via
 * fault_mix(salt, attempt), so retries are reproducible too.
 *
 * @param cfg device configuration (also selects timing-only mode).
 */
DispatchResult dispatch_plan(const ExecutionPlan& plan, const Graph& graph,
                             const TensorMap& tmap, const GpuConfig& cfg);

/**
 * Shared mini-batch transaction driver: autoboost/fault-salt
 * assignment (process-wide counters so successive dispatches of any
 * kind keep drifting clocks and unique fault draws), the
 * abort-and-replay retry loop with simulated exponential backoff, and
 * the final stats/clock readout. `enqueue` is called once per attempt
 * on a fresh device with `num_streams` streams created; its measured
 * wall time lands in DispatchResult::host_enqueue_ns. Both the generic
 * dispatch_plan() and the compiled replay_wired() run through here so
 * their transaction semantics cannot drift apart. The synchronized
 * final-attempt device is returned through `gpu_out` for profile
 * collection and tracing.
 */
DispatchResult run_dispatch_transaction(
    const GpuConfig& cfg, int num_streams,
    const std::function<void(SimGpu&)>& enqueue,
    std::unique_ptr<SimGpu>* gpu_out);

/**
 * Shared plan-to-device enqueue core.
 *
 * Owns the dependency analysis (producer steps, cross-stream waits,
 * barrier rendezvous) and the profiling event instrumentation, but not
 * the device itself: callers bring a SimGpu, so the same enqueue logic
 * drives both the single-device dispatch_plan() and the multi-device
 * data-parallel dispatcher (dispatcher_dp.h), which replays one plan
 * onto every device of a MultiSim.
 *
 * The after-step hook runs right after a (non-barrier) step's commands
 * are enqueued — the injection point for gradient-bucket flush events
 * and ring-allreduce chunk transfers. Commands the hook enqueues share
 * the host enqueue pipeline, so comm launch overhead delays later
 * compute launches exactly as a DDP hook does on real hardware.
 */
class PlanEnqueuer
{
  public:
    /** Called with the step index after that step's commands enqueue. */
    using StepHook = std::function<void(int)>;

    /**
     * Compile the plan's command stream and bind to a device. The
     * dependency analysis runs in compile_plan (runtime/wired.h); this
     * overload pays it per construction, exactly like the historical
     * enqueuer.
     *
     * @param profiling honor the steps' profile/epoch_metric flags
     *        (false skips all instrumentation events — the dp path
     *        measures whole devices, not steps).
     */
    PlanEnqueuer(const ExecutionPlan& plan, const Graph& graph,
                 const TensorMap& tmap, const GpuConfig& cfg, SimGpu& gpu,
                 bool profiling);

    /**
     * Bind an already-compiled program to a device, skipping the
     * dependency analysis — the dp path compiles once and replays the
     * same program onto every device of a MultiSim.
     */
    PlanEnqueuer(std::shared_ptr<const WiredProgram> program,
                 const ExecutionPlan& plan, const Graph& graph,
                 const TensorMap& tmap, const GpuConfig& cfg, SimGpu& gpu);

    ~PlanEnqueuer();

    /** Enqueue every plan step onto the device. */
    void enqueue(const StepHook& after_step = {});

    /**
     * Fill result.profile_ns from the instrumentation events; call
     * after the device has synchronized. No-op when !profiling.
     */
    void collect_profiles(DispatchResult& result) const;

    const WiredProgram& program() const { return *program_; }

  private:
    const ExecutionPlan& plan_;
    const Graph& graph_;
    const TensorMap& tmap_;
    const GpuConfig& cfg_;
    SimGpu& gpu_;

    std::shared_ptr<const WiredProgram> program_;
    std::vector<EventId> events_;  ///< program slot -> device event
};

}  // namespace astra
