/**
 * @file
 * Drives an ExecutionPlan on the simulated GPU.
 *
 * This is the layer Astra interposes at (paper Fig. 3): it owns stream
 * creation, cross-stream event synchronization, barrier realization and
 * the cudaEvent-style profiling instrumentation. All backends (native,
 * XLA-like, cuDNN-path, Astra) dispatch through this one function, so
 * measured times are comparable across them.
 */
#pragma once

#include <map>
#include <string>

#include "runtime/plan.h"
#include "runtime/tensor_map.h"
#include "sim/gpu.h"

namespace astra {

/** Timing results of one dispatched mini-batch. */
struct DispatchResult
{
    /** Makespan of the whole mini-batch in simulated ns. */
    double total_ns = 0.0;

    /**
     * Fine-grained measurements: profile_key -> summed elapsed ns
     * (for epoch_metric keys: max barrier-to-completion time).
     */
    std::map<std::string, double> profile_ns;

    /** Device counters accumulated during the run. */
    GpuStats stats;

    /**
     * Clock multiplier the device reported for this mini-batch (NVML
     * query; 1.0 at base clock). Measurement policies that normalize
     * for DVFS multiply measured spans by it (profile_index.h).
     */
    double clock_multiplier = 1.0;

    /** Kernel timeline (only when cfg.collect_trace is set). */
    std::vector<TraceSpan> trace;
};

/**
 * Execute the plan on a fresh simulated device.
 *
 * The plan's step order must be a valid topological order of the
 * covered graph nodes (checked). Cross-stream data dependencies are
 * enforced with event record/wait pairs; same-stream dependencies rely
 * on FIFO order. Barrier steps synchronize all streams.
 *
 * @param cfg device configuration (also selects timing-only mode).
 */
DispatchResult dispatch_plan(const ExecutionPlan& plan, const Graph& graph,
                             const TensorMap& tmap, const GpuConfig& cfg);

}  // namespace astra
