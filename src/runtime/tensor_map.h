/**
 * @file
 * Mapping of graph nodes to simulated device memory.
 *
 * The memory planner realizes an *allocation strategy*: a set of
 * adjacency runs (ordered groups of same-shape tensors that must be
 * laid out back-to-back so a batched/fused GEMM can address them with a
 * uniform stride, paper §3.2 / §4.5.2). Everything not constrained by a
 * run is allocated in node order.
 */
#pragma once

#include <vector>

#include "graph/graph.h"
#include "sim/memory.h"

namespace astra {

/** An ordered group of node outputs that must be contiguous in HBM. */
struct AdjacencyRun
{
    std::vector<NodeId> members;
};

/** How the planner assigns device addresses. */
enum class MemoryPlanMode
{
    /** Every node gets its own buffer for the whole step (simple). */
    Bump,

    /**
     * Liveness-based reuse: a buffer is recycled once its node's last
     * consumer has executed (in node order). This is what real
     * framework allocators do, and it is what makes the §3.4
     * recompute-for-memory trade measurable: recomputation shortens
     * forward activations' lifetimes, shrinking the peak footprint.
     */
    Reuse,
};

/** Node-id -> device-buffer mapping for one graph. */
class TensorMap
{
  public:
    /**
     * Plan allocations for every node of the graph.
     *
     * @param runs adjacency runs to honor; members must be mutually
     *        disjoint across runs (the enumerator's conflict resolution
     *        guarantees this) and have equal byte sizes within a run.
     */
    TensorMap(const Graph& graph, SimMemory& mem,
              const std::vector<AdjacencyRun>& runs = {},
              MemoryPlanMode mode = MemoryPlanMode::Bump);

    /**
     * Peak device bytes the plan needs. For Bump mode this equals the
     * total allocated; for Reuse mode it is the high-water mark.
     */
    int64_t peak_bytes() const { return peak_bytes_; }

    /** Device address of a node's output buffer. */
    DevPtr ptr(NodeId id) const;

    /** Host fp32 view of a node's buffer. */
    float* f32(NodeId id) const;

    /** Host i32 view of a node's buffer. */
    int32_t* i32(NodeId id) const;

    /** True when the run's members are laid out back-to-back in order. */
    bool adjacent(const std::vector<NodeId>& members) const;

    SimMemory& memory() const { return *mem_; }
    const Graph& graph() const { return *graph_; }

  private:
    void plan_bump(const std::vector<AdjacencyRun>& runs);
    void plan_reuse(const std::vector<AdjacencyRun>& runs);

    const Graph* graph_;
    SimMemory* mem_;
    std::vector<DevPtr> ptrs_;
    int64_t peak_bytes_ = 0;
};

}  // namespace astra
