/**
 * @file
 * Deterministic, seeded fault injection for the simulated testbed.
 *
 * Astra's premise is that every mini-batch re-executes the same DFG
 * (§4.1), so the runtime can keep making training progress while it
 * explores — but a production-scale deployment must keep custom-wiring
 * through transient kernel failures, allocation failures, stragglers
 * and degraded links. A FaultPlan describes which perturbations to
 * inject; a FaultInjector draws them reproducibly from a stateless
 * splitmix64 hash of (plan seed, injector salt, fault kind, per-kind
 * sequence number), so the faults a dispatch sees are a pure function
 * of its salt — never of thread interleaving or of how many other
 * dispatches ran before it. That is what keeps the parallel wirer's
 * bit-identical determinism contract intact under fault injection.
 *
 * Fault model (one FaultSpec per clause of the spec string):
 *  - kernel:    a launched kernel completes timing-wise and records its
 *               events, but its host compute callback is skipped (a
 *               sticky uncorrected-error model: values are wrong until
 *               the mini-batch is replayed). Optional name substring
 *               targets specific kernels.
 *  - straggler: a launched kernel's setup and block times are scaled by
 *               factor `x` (a latency spike / slow SM partition).
 *  - alloc:     a device allocation fails (cudaMalloc error), and
 *               factor `x` models fragmentation by shrinking the
 *               effective pool capacity.
 *  - comm:      a link transfer's cost is scaled by factor `x`
 *               (degraded ring link).
 *
 * Beyond device-level draws, a plan can carry *replica* fault specs for
 * the serving fleet (serve/router.h): scheduled replica death and
 * flapping (periodic down/up cycles). These are pure functions of
 * simulated time — replica_alive() answers "is replica r up at t?"
 * deterministically, so a chaos bench under a fixed plan pins exact
 * failover counts.
 *
 * Spec grammar (ASTRA_FAULTS / astra_cli --fault-spec), clauses
 * separated by ';':
 *
 *   seed=N;retries=N;backoff_us=F
 *   kernel:p=F[,at=N][,name=SUBSTR]
 *   straggler:p=F[,x=F][,at=N]
 *   alloc:p=F[,at=N][,x=F]
 *   comm:p=F[,x=F][,at=N]
 *   replica_death:r=N,at_ns=F
 *   replica_flap:r=N,at_ns=F,down_ns=F[,up_ns=F][,count=N]
 *
 * `p` fires a fault with that probability per draw; `at` fires exactly
 * once, at the given per-kind sequence number (deterministic one-shot).
 * Malformed specs are rejected with a "token N: reason" diagnostic
 * (tokens are the 1-based ';'-separated clauses), matching the
 * config_io error convention: unknown keys, duplicate keys and
 * out-of-range values all name the offending token instead of being
 * silently ignored.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace astra {

/** Which perturbation a FaultSpec injects. */
enum class FaultKind
{
    Kernel,     ///< transient kernel failure (compute skipped)
    Straggler,  ///< latency spike: kernel time scaled by `factor`
    Alloc,      ///< allocation failure / fragmentation
    Comm,       ///< link degradation: transfer cost scaled by `factor`
};

constexpr int kNumFaultKinds = 4;

/** Short display name ("kernel", "straggler", "alloc", "comm"). */
const char* fault_kind_name(FaultKind kind);

/** One injection clause of a FaultPlan. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Kernel;

    /** Per-draw fault probability (0 = never fires probabilistically). */
    double p = 0.0;

    /**
     * Severity factor: time scale for Straggler/Comm, fragmentation
     * headroom divisor on pool capacity for Alloc. Ignored for Kernel.
     */
    double factor = 1.0;

    /** One-shot: fire exactly at this per-kind sequence number (-1 off). */
    int64_t at = -1;

    /** Kernel-name substring filter (Kernel/Straggler only; "" = any). */
    std::string name;
};

/**
 * One scheduled replica-level fault of the serving fleet: a death
 * (down forever from at_ns) or a flap (repeating down/up cycles).
 * Liveness is a pure function of simulated time (replica_alive), so
 * the router's failure handling is bit-reproducible under a fixed
 * plan — never a function of event interleaving.
 */
struct ReplicaFaultSpec
{
    /** False: death (down forever). True: periodic down/up flapping. */
    bool flap = false;

    /** Target replica id (serve/replica.h numbering). */
    int replica = 0;

    /** First down edge (simulated ns). */
    double at_ns = 0.0;

    /** Flap only: down duration per cycle (ns). */
    double down_ns = 0.0;

    /** Flap only: up duration between down intervals (ns). */
    double up_ns = 0.0;

    /** Flap only: number of down intervals (-1 = forever). */
    int64_t count = -1;
};

/** A parsed fault-injection plan (empty = fault-free). */
struct FaultPlan
{
    /** Base seed for every injector draw. */
    uint64_t seed = 1;

    /** Retry budget for a transiently-faulted mini-batch dispatch. */
    int max_retries = 8;

    /** Base of the dispatcher's exponential retry backoff. */
    double backoff_us = 50.0;

    std::vector<FaultSpec> specs;

    /** Replica death/flap schedule (consumed by serve/router.h). */
    std::vector<ReplicaFaultSpec> replica_faults;

    bool empty() const { return specs.empty() && replica_faults.empty(); }

    /** True when any spec injects the given kind. */
    bool has(FaultKind kind) const;

    /**
     * Parse a spec string (grammar in the file header).
     * @return false (leaving *out untouched) on malformed input;
     *         *error receives "token N: reason" when non-null.
     */
    static bool parse(const std::string& spec, FaultPlan* out,
                      std::string* error = nullptr);

    /**
     * The process-wide plan from ASTRA_FAULTS (empty when unset or
     * malformed — a bad env spec must not crash every binary). Read
     * once, then cached, like sim_autoboost_env().
     */
    static const FaultPlan& from_env();

    /** Round-trippable spec string (for logs and reports). */
    std::string to_string() const;
};

/**
 * splitmix64 finalizer over a seed/value pair: the stateless hash all
 * injector draws come from. Also used to derive independent per-attempt
 * and per-strategy fault salts without any shared RNG state.
 */
uint64_t fault_mix(uint64_t seed, uint64_t value);

/**
 * Is replica `replica` up at simulated time `t_ns` under the plan's
 * replica fault schedule? A replica starts alive; each matching spec
 * can only take it down (overlapping specs OR their down intervals).
 */
bool replica_alive(const FaultPlan& plan, int replica, double t_ns);

/**
 * All liveness transition edges of one replica within [0, horizon_ns),
 * sorted ascending and deduplicated. Even positions entering a
 * down-interval are not distinguished — callers probe replica_alive on
 * either side of an edge. The serving router uses these to schedule
 * deterministic failure/revival events.
 */
std::vector<double> replica_transitions(const FaultPlan& plan,
                                        int replica, double horizon_ns);

/** Outcome of one kernel-launch draw. */
struct KernelFault
{
    bool fail = false;       ///< skip the compute callback
    double slowdown = 1.0;   ///< time scale (straggler spike)
};

/**
 * Draws faults for one execution domain (one SimGpu, one SimMemory,
 * one comm endpoint). Holds only per-kind sequence counters; every
 * draw is a pure hash of (plan seed, salt, kind, sequence), so two
 * injectors with the same plan and salt replay identical faults.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** @param plan must outlive the injector; nullptr disarms it. */
    FaultInjector(const FaultPlan* plan, uint64_t salt)
        : plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
          salt_(salt)
    {
    }

    bool armed() const { return plan_ != nullptr; }

    /** Draw for one kernel launch (advances the launch sequence). */
    KernelFault on_kernel(const std::string& name);

    /** Draw for one allocation; true = the allocation fails. */
    bool on_alloc();

    /** Draw for one link transfer; returns the cost scale (>= 1). */
    double on_comm();

    /**
     * Fragmentation headroom: the largest Alloc-spec factor (>= 1).
     * SimMemory divides its effective capacity by it while armed.
     */
    double alloc_headroom() const;

  private:
    /** Uniform [0,1) draw for (kind, seq) under this plan and salt. */
    double draw(FaultKind kind, uint64_t seq) const;

    /** True when `spec` fires for sequence number `seq`. */
    bool fires(const FaultSpec& spec, uint64_t seq) const;

    const FaultPlan* plan_ = nullptr;
    uint64_t salt_ = 0;
    uint64_t seq_[kNumFaultKinds] = {0, 0, 0, 0};
};

}  // namespace astra
