/**
 * @file
 * Deterministic, seeded fault injection for the simulated testbed.
 *
 * Astra's premise is that every mini-batch re-executes the same DFG
 * (§4.1), so the runtime can keep making training progress while it
 * explores — but a production-scale deployment must keep custom-wiring
 * through transient kernel failures, allocation failures, stragglers
 * and degraded links. A FaultPlan describes which perturbations to
 * inject; a FaultInjector draws them reproducibly from a stateless
 * splitmix64 hash of (plan seed, injector salt, fault kind, per-kind
 * sequence number), so the faults a dispatch sees are a pure function
 * of its salt — never of thread interleaving or of how many other
 * dispatches ran before it. That is what keeps the parallel wirer's
 * bit-identical determinism contract intact under fault injection.
 *
 * Fault model (one FaultSpec per clause of the spec string):
 *  - kernel:    a launched kernel completes timing-wise and records its
 *               events, but its host compute callback is skipped (a
 *               sticky uncorrected-error model: values are wrong until
 *               the mini-batch is replayed). Optional name substring
 *               targets specific kernels.
 *  - straggler: a launched kernel's setup and block times are scaled by
 *               factor `x` (a latency spike / slow SM partition).
 *  - alloc:     a device allocation fails (cudaMalloc error), and
 *               factor `x` models fragmentation by shrinking the
 *               effective pool capacity.
 *  - comm:      a link transfer's cost is scaled by factor `x`
 *               (degraded ring link).
 *
 * Spec grammar (ASTRA_FAULTS / astra_cli --fault-spec), clauses
 * separated by ';':
 *
 *   seed=N;retries=N;backoff_us=F
 *   kernel:p=F[,at=N][,name=SUBSTR]
 *   straggler:p=F[,x=F][,at=N]
 *   alloc:p=F[,at=N][,x=F]
 *   comm:p=F[,x=F][,at=N]
 *
 * `p` fires a fault with that probability per draw; `at` fires exactly
 * once, at the given per-kind sequence number (deterministic one-shot).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace astra {

/** Which perturbation a FaultSpec injects. */
enum class FaultKind
{
    Kernel,     ///< transient kernel failure (compute skipped)
    Straggler,  ///< latency spike: kernel time scaled by `factor`
    Alloc,      ///< allocation failure / fragmentation
    Comm,       ///< link degradation: transfer cost scaled by `factor`
};

constexpr int kNumFaultKinds = 4;

/** Short display name ("kernel", "straggler", "alloc", "comm"). */
const char* fault_kind_name(FaultKind kind);

/** One injection clause of a FaultPlan. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Kernel;

    /** Per-draw fault probability (0 = never fires probabilistically). */
    double p = 0.0;

    /**
     * Severity factor: time scale for Straggler/Comm, fragmentation
     * headroom divisor on pool capacity for Alloc. Ignored for Kernel.
     */
    double factor = 1.0;

    /** One-shot: fire exactly at this per-kind sequence number (-1 off). */
    int64_t at = -1;

    /** Kernel-name substring filter (Kernel/Straggler only; "" = any). */
    std::string name;
};

/** A parsed fault-injection plan (empty = fault-free). */
struct FaultPlan
{
    /** Base seed for every injector draw. */
    uint64_t seed = 1;

    /** Retry budget for a transiently-faulted mini-batch dispatch. */
    int max_retries = 8;

    /** Base of the dispatcher's exponential retry backoff. */
    double backoff_us = 50.0;

    std::vector<FaultSpec> specs;

    bool empty() const { return specs.empty(); }

    /** True when any spec injects the given kind. */
    bool has(FaultKind kind) const;

    /**
     * Parse a spec string (grammar in the file header).
     * @return false (leaving *out untouched) on malformed input.
     */
    static bool parse(const std::string& spec, FaultPlan* out);

    /**
     * The process-wide plan from ASTRA_FAULTS (empty when unset or
     * malformed — a bad env spec must not crash every binary). Read
     * once, then cached, like sim_autoboost_env().
     */
    static const FaultPlan& from_env();

    /** Round-trippable spec string (for logs and reports). */
    std::string to_string() const;
};

/**
 * splitmix64 finalizer over a seed/value pair: the stateless hash all
 * injector draws come from. Also used to derive independent per-attempt
 * and per-strategy fault salts without any shared RNG state.
 */
uint64_t fault_mix(uint64_t seed, uint64_t value);

/** Outcome of one kernel-launch draw. */
struct KernelFault
{
    bool fail = false;       ///< skip the compute callback
    double slowdown = 1.0;   ///< time scale (straggler spike)
};

/**
 * Draws faults for one execution domain (one SimGpu, one SimMemory,
 * one comm endpoint). Holds only per-kind sequence counters; every
 * draw is a pure hash of (plan seed, salt, kind, sequence), so two
 * injectors with the same plan and salt replay identical faults.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** @param plan must outlive the injector; nullptr disarms it. */
    FaultInjector(const FaultPlan* plan, uint64_t salt)
        : plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
          salt_(salt)
    {
    }

    bool armed() const { return plan_ != nullptr; }

    /** Draw for one kernel launch (advances the launch sequence). */
    KernelFault on_kernel(const std::string& name);

    /** Draw for one allocation; true = the allocation fails. */
    bool on_alloc();

    /** Draw for one link transfer; returns the cost scale (>= 1). */
    double on_comm();

    /**
     * Fragmentation headroom: the largest Alloc-spec factor (>= 1).
     * SimMemory divides its effective capacity by it while armed.
     */
    double alloc_headroom() const;

  private:
    /** Uniform [0,1) draw for (kind, seq) under this plan and salt. */
    double draw(FaultKind kind, uint64_t seq) const;

    /** True when `spec` fires for sequence number `seq`. */
    bool fires(const FaultSpec& spec, uint64_t seq) const;

    const FaultPlan* plan_ = nullptr;
    uint64_t salt_ = 0;
    uint64_t seq_[kNumFaultKinds] = {0, 0, 0, 0};
};

}  // namespace astra
