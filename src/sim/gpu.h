/**
 * @file
 * Discrete-event GPU simulator.
 *
 * This stands in for the CUDA device + driver in the paper's testbed.
 * It exposes exactly the abstractions Astra's runtime consumes — streams
 * (FIFO command queues), events (timestamps + cross-stream waits),
 * asynchronous kernel launch with a fixed launch overhead, and
 * cudaEvent-style elapsed-time queries — and models the performance
 * phenomena the paper's optimizations exploit:
 *
 *  - a fixed ~6 us per-kernel launch overhead (host driver + device
 *    command front-end) that pipelines under long kernels but starves
 *    the SMs when kernels are tiny (fusion amortizes it, §2.3);
 *  - an SM pool shared by concurrently-running kernels via fluid
 *    waterfilling, so multi-stream schedules overlap and a kernel's
 *    completion time depends on what else is resident (§3.3);
 *  - per-kernel occupancy caps, giving diminishing returns to very large
 *    fused kernels (§3.2's "fused can be slower than two streams");
 *  - optional autoboost clock jitter that breaks run-to-run
 *    repeatability (§7 "Predictable execution").
 *
 * Astra itself never reads the cost model — it can only launch work and
 * measure events, as on real hardware.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "sim/kernel.h"
#include "sim/trace.h"
#include "support/rng.h"

namespace astra {

/**
 * True when the ASTRA_SIM_AUTOBOOST environment variable is set to a
 * non-empty value other than "0" — the CI noise job uses it to run
 * the whole suite under clock jitter. Read once, then cached.
 */
bool sim_autoboost_env();

/** Device configuration (defaults approximate a P100). */
struct GpuConfig
{
    int num_sms = 56;

    /** FP32 multiply-add throughput per SM, in flops per nanosecond. */
    double flops_per_sm_ns = 166.0;

    /** HBM bandwidth in GB/s (elementwise kernels are bound by this). */
    double hbm_gbps = 650.0;

    /**
     * Host-side cost to enqueue one kernel launch (§2.3's 5-10 us).
     * The host enqueues asynchronously ahead of the device, so this
     * overhead hides under long-running kernels and dominates only
     * when kernels are small — the launch-bound regime that makes
     * naive RNN dispatch slow and fusion profitable.
     */
    double launch_overhead_ns = 6000.0;

    /**
     * Cost of recording one event on a stream (profiling overhead).
     * CUDA events are device-side timestamps and deliberately cheap
     * (§5.2 / §7 "lightweight profiling events").
     */
    double event_record_ns = 20.0;

    /**
     * Host-side cost to enqueue one event command (record or wait).
     * Much cheaper than a kernel launch but not free: dense
     * fine-grained instrumentation pays it per profiled step, which is
     * the §5.1/§6.4 profiling overhead the custom wirer keeps < 0.5%
     * by instrumenting at fusion-group granularity.
     */
    double event_enqueue_ns = 400.0;

    /**
     * Run kernels' host compute callbacks (real values). Timing-only
     * sweeps disable this; value-preservation tests enable it.
     */
    bool execute_kernels = true;

    /** Record a TraceSpan per executed kernel (timeline debugging). */
    bool collect_trace = false;

    /**
     * Enable autoboost clock jitter (violates predictability, §7).
     * Modeled as DVFS: the driver re-evaluates the clock when the
     * pipeline drains, so the multiplier is constant within one launch
     * sequence (a mini-batch lasts well under the clock governor's
     * reaction time) and re-drawn at every synchronize. The current
     * multiplier is queryable via clock_multiplier(), as the SM clock
     * is on real devices through NVML.
     */
    bool autoboost = sim_autoboost_env();

    /** Max fractional speedup from autoboost (clock above base). */
    double autoboost_amplitude = 0.12;

    uint64_t autoboost_seed = 17;

    /**
     * When > 0, the device holds this clock multiplier for every
     * launch sequence instead of drawing from its boost RNG. The
     * parallel wirer pre-draws one multiplier per dispatch from a
     * per-strategy ClockDomain so the jitter a trial sees depends only
     * on its position in that strategy's measurement sequence — never
     * on how concurrent strategies interleave (the determinism
     * contract of core/wirer.cc). 0 (the default) keeps the device's
     * own DVFS draw.
     */
    double forced_clock_multiplier = 0.0;

    /**
     * Fault-injection plan (sim/faults.h; empty = fault-free device).
     * Defaults to the process-wide ASTRA_FAULTS plan so the whole test
     * suite can run under an injected fault matrix.
     */
    FaultPlan faults = FaultPlan::from_env();

    /**
     * Domain salt for the device's fault draws. The faults a dispatch
     * sees are a pure function of (faults.seed, fault_salt), never of
     * dispatch ordering — the same determinism discipline as
     * forced_clock_multiplier. The dispatcher assigns a process-unique
     * salt when the caller leaves 0 and a plan is armed; retry attempts
     * re-salt so a transient fault does not repeat deterministically.
     */
    uint64_t fault_salt = 0;
};

/**
 * A deterministic source of per-dispatch DVFS multipliers.
 *
 * Physical autoboost state lives in the device and does not reset
 * between mini-batches, so successive dispatches measure at different
 * clocks (§7's repeatability violation). With concurrent exploration
 * there is no longer one global dispatch order to thread that state
 * through; instead each exploration strand owns a ClockDomain seeded
 * from (autoboost_seed, salt) and forces draw() onto each dispatch via
 * GpuConfig::forced_clock_multiplier. Same strand, same draw sequence,
 * regardless of what runs concurrently.
 */
class ClockDomain
{
  public:
    /** Golden-ratio mixing constant for salting seeds (splitmix64). */
    static constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

    ClockDomain(const GpuConfig& config, uint64_t salt)
        : on_(config.autoboost),
          amplitude_(config.autoboost_amplitude),
          rng_(config.autoboost_seed + kSeedMix * salt)
    {
    }

    /**
     * Multiplier for the next dispatch: a fresh boost draw when
     * autoboost is on, 0.0 (= "do not force, stay at base clock")
     * when off.
     */
    double draw()
    {
        if (!on_)
            return 0.0;
        return 1.0 + amplitude_ * rng_.next_double();
    }

  private:
    bool on_;
    double amplitude_;
    Rng rng_;
};

/** Identifier for a stream on a SimGpu. */
using StreamId = int32_t;

/** Identifier for an event on a SimGpu. */
using EventId = int32_t;

/** Cumulative device counters (observable without perturbing timing). */
struct GpuStats
{
    int64_t kernels_launched = 0;
    int64_t events_recorded = 0;
    double busy_sm_ns = 0.0;     ///< integral of (allocated SMs) dt
    double elapsed_ns = 0.0;     ///< total simulated wall time

    /** Kernel launches whose compute was killed by an injected fault. */
    int64_t faults_injected = 0;

    /** Kernel launches hit by an injected straggler latency spike. */
    int64_t straggler_events = 0;
};

/** The simulated device. */
class SimGpu
{
  public:
    /** Outcome of one run_until() call. */
    enum class RunState
    {
        Drained,  ///< every stream's queue is empty, nothing running
        Blocked,  ///< stalled on events nobody on this device will record
        Paused,   ///< stopped at the horizon; next_event_ns() says when
    };

    explicit SimGpu(GpuConfig config = {});

    const GpuConfig& config() const { return config_; }

    /** Create a new stream; stream 0 exists by default. */
    StreamId create_stream();

    int num_streams() const { return static_cast<int>(streams_.size()); }

    /** Create an event (initially unrecorded). */
    EventId create_event();

    /** Enqueue a kernel launch on a stream (asynchronous). */
    void launch(StreamId stream, KernelDesc kernel);

    /** Enqueue an event record on a stream. */
    void record_event(StreamId stream, EventId event);

    /** Make a stream wait until an event has been recorded. */
    void wait_event(StreamId stream, EventId event);

    /** Run the device until every stream's queue is drained. */
    void synchronize();

    /**
     * Event-loop stepping for multi-device co-simulation (MultiSim):
     * process every device event with timestamp <= t_stop. Returns
     *  - Drained when all queues emptied,
     *  - Blocked when progress requires an event this device will never
     *    record itself (a cross-device dependency — the caller must
     *    record_external() it and call again),
     *  - Paused when the next event lies beyond the horizon; its time
     *    is then available from next_event_ns(). Kernels in flight are
     *    advanced (linearly) exactly to t_stop.
     * synchronize() is run_until(infinity) + panic on Blocked.
     */
    RunState run_until(double t_stop);

    /**
     * Earliest pending device event strictly beyond the last
     * run_until() horizon. Only meaningful after a Paused return.
     */
    double next_event_ns() const { return next_event_; }

    /**
     * Mark an event recorded at an externally-determined timestamp —
     * the arrival of a cross-device signal (MultiSim mirrors a peer
     * device's record onto this one). The event must not have been
     * recorded already. `t` may lie in this device's future; streams
     * waiting on it stall until the device clock reaches it.
     */
    void record_external(EventId event, double t);

    /** Current simulated time (ns). Only meaningful after synchronize. */
    double now_ns() const { return now_; }

    /** Timestamp of a recorded event; fatal if never recorded. */
    double event_time_ns(EventId event) const;

    /** True once the event has been recorded and executed. */
    bool event_recorded(EventId event) const;

    /** elapsed = end - start, both must be recorded. */
    double elapsed_ns(EventId start, EventId end) const;

    /** Reset events to unrecorded (reuse across mini-batches). */
    void reset_events();

    const GpuStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    /** Average SM utilization over all simulated time so far. */
    double utilization() const;

    /**
     * Clock multiplier (current clock / base clock, >= 1.0) applied to
     * the most recent launch sequence — the NVML clock query. 1.0 at
     * base clock; under autoboost, re-drawn at each synchronize.
     */
    double clock_multiplier() const { return clock_m_; }

    /** Kernel spans recorded when config.collect_trace is set. */
    const std::vector<TraceSpan>& trace() const { return trace_; }

  private:
    enum class CmdType { Launch, Record, Wait };

    struct Command
    {
        CmdType type;
        KernelDesc kernel;   // Launch
        EventId event = -1;  // Record / Wait
        double ready_at = 0.0;  ///< host enqueue completion time

        /**
         * Injected transient failure: the kernel occupies the device
         * and records its events normally (its timing is real), but
         * its host compute callback is skipped — downstream values are
         * silently wrong until the mini-batch is replayed, exactly the
         * uncorrected-error model the dispatcher's retry transaction
         * recovers from.
         */
        bool faulted = false;
    };

    struct Stream
    {
        std::deque<Command> queue;
        int active = -1;     ///< index into running_, -1 when idle
    };

    struct Running
    {
        int stream = -1;
        double serial_left = 0.0;   ///< setup remaining
        double blocks_left = 0.0;   ///< parallel work remaining
        double blocks_total = 0.0;  ///< launched block count
        double block_ns = 1.0;
        int max_sms = 0;
        double alloc = 0.0;         ///< SMs currently assigned
        bool is_event = false;      ///< event-record pseudo-kernel
        EventId event = -1;
        double started_at = 0.0;    ///< activation time (for tracing)
        std::string name;           ///< kernel label (for tracing)
        std::string key;            ///< profile key (for tracing)
    };

    /** Start every startable command; returns true if anything started. */
    bool activate_ready();

    /** Distribute SMs over kernels in their parallel phase. */
    void waterfill();

    /** Time-scale factor of the current clock state (1.0 when off). */
    double boost_factor() const;

    /**
     * Sample the DVFS state at the start of a launch sequence (first
     * enqueue after a drain) and return the time-scale factor to apply
     * to the command being enqueued.
     */
    double begin_command();

    GpuConfig config_;
    FaultInjector injector_;  ///< draws from config_.faults
    std::vector<Stream> streams_;
    std::vector<double> event_times_;   // -1 = unrecorded
    std::vector<Running> running_;
    double now_ = 0.0;
    double next_event_ = 0.0;  ///< set by run_until on Paused
    double host_time_ = 0.0;  ///< host enqueue pipeline position
    GpuStats stats_;
    std::vector<TraceSpan> trace_;
    Rng boost_rng_;
    double clock_m_ = 1.0;  ///< current clock / base clock (DVFS state)
    bool clock_sampled_ = false;  ///< clock held for the open sequence
};

}  // namespace astra
