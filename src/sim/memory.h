/**
 * @file
 * Simulated HBM device memory.
 *
 * Allocations have real device addresses inside one contiguous pool, so
 * "are these tensors adjacent?" is a meaningful question — GEMM fusion
 * without copies requires operand tensors to be allocated contiguously
 * (paper §3.2), and the memory planner decides placement. The pool is
 * backed by host storage so kernels compute actual values.
 *
 * Allocation failure is a *recoverable* condition (MemoryError), not a
 * process abort: the session layer reacts by degrading to a more
 * conservative allocation strategy (liveness-based buffer reuse, then a
 * recompute-rewritten graph — core/astra.h's graceful-degradation
 * ladder) the way a training framework falls back when cudaMalloc
 * fails. Injected allocation faults (sim/faults.h) exercise the same
 * path without actually shrinking the pool.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/faults.h"
#include "support/logging.h"

namespace astra {

/** Device address within the simulated HBM pool (byte offset). */
using DevPtr = int64_t;

/** Sentinel for "not allocated". */
constexpr DevPtr kNullDev = -1;

/** Recoverable device-memory failure (the cudaError of this testbed). */
class MemoryError : public std::runtime_error
{
  public:
    enum class Kind
    {
        Exhausted,   ///< the request does not fit the pool
        BadPointer,  ///< a device address outside the pool
        Injected,    ///< a fault-plan allocation failure
    };

    MemoryError(Kind kind, int64_t requested, int64_t capacity);

    Kind kind() const { return kind_; }

    /** Bytes requested (Exhausted/Injected) or the offending address. */
    int64_t requested() const { return requested_; }

    /** Pool capacity at the time of the failure. */
    int64_t capacity() const { return capacity_; }

  private:
    Kind kind_;
    int64_t requested_;
    int64_t capacity_;
};

/** A bump allocator over one simulated HBM pool. */
class SimMemory
{
  public:
    /**
     * @param bytes pool capacity (default 512 MiB).
     * @param zero zero-fill the pool (value-executing runs want
     *        deterministic contents; timing-only sweeps skip the cost
     *        and never read the backing store).
     */
    explicit SimMemory(int64_t bytes = 512ll * 1024 * 1024,
                       bool zero = true);

    /**
     * Allocate `bytes` with the given alignment. Throws MemoryError on
     * exhaustion or when an armed fault plan injects a failure — the
     * caller degrades (core/astra.h) instead of the process dying.
     */
    DevPtr allocate(int64_t bytes, int64_t align = 256);

    /**
     * Arm fault injection on this pool: Alloc-kind specs can fail
     * individual allocations, and the largest Alloc factor models
     * fragmentation by dividing the effective capacity. The plan must
     * outlive the pool. Sequence state survives reset(), so a one-shot
     * `at=N` fault does not re-fire when the caller retries after
     * degrading.
     */
    void arm_faults(const FaultPlan* plan, uint64_t salt);

    /** Reset the allocator (invalidates all previous allocations). */
    void reset() { next_ = 0; }

    /** Bytes currently allocated. */
    int64_t used() const { return next_; }

    /** Pool capacity in bytes. */
    int64_t capacity() const { return capacity_; }

    /** Capacity after the armed plan's fragmentation headroom. */
    int64_t effective_capacity() const;

    /** Host pointer backing a device address (fp32 view). */
    float*
    f32(DevPtr p)
    {
        check_pointer(p);
        return reinterpret_cast<float*>(pool_.get() + p);
    }
    const float*
    f32(DevPtr p) const
    {
        check_pointer(p);
        return reinterpret_cast<const float*>(pool_.get() + p);
    }

    /** Host pointer backing a device address (i32 view). */
    int32_t*
    i32(DevPtr p)
    {
        check_pointer(p);
        return reinterpret_cast<int32_t*>(pool_.get() + p);
    }

    /** True when b starts exactly where a (of `a_bytes` bytes) ends. */
    static bool
    adjacent(DevPtr a, int64_t a_bytes, DevPtr b)
    {
        return a >= 0 && b >= 0 && a + a_bytes == b;
    }

  private:
    void
    check_pointer(DevPtr p) const
    {
        if (p < 0 || p >= capacity_)
            throw MemoryError(MemoryError::Kind::BadPointer, p,
                              capacity_);
    }

    int64_t capacity_;
    int64_t next_ = 0;
    std::unique_ptr<uint8_t[]> pool_;
    FaultInjector injector_;
};

}  // namespace astra
