/**
 * @file
 * Simulated HBM device memory.
 *
 * Allocations have real device addresses inside one contiguous pool, so
 * "are these tensors adjacent?" is a meaningful question — GEMM fusion
 * without copies requires operand tensors to be allocated contiguously
 * (paper §3.2), and the memory planner decides placement. The pool is
 * backed by host storage so kernels compute actual values.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "support/logging.h"

namespace astra {

/** Device address within the simulated HBM pool (byte offset). */
using DevPtr = int64_t;

/** Sentinel for "not allocated". */
constexpr DevPtr kNullDev = -1;

/** A bump allocator over one simulated HBM pool. */
class SimMemory
{
  public:
    /**
     * @param bytes pool capacity (default 512 MiB).
     * @param zero zero-fill the pool (value-executing runs want
     *        deterministic contents; timing-only sweeps skip the cost
     *        and never read the backing store).
     */
    explicit SimMemory(int64_t bytes = 512ll * 1024 * 1024,
                       bool zero = true);

    /**
     * Allocate `bytes` with the given alignment; fatal() on exhaustion
     * (the model does not fit the device).
     */
    DevPtr allocate(int64_t bytes, int64_t align = 256);

    /** Reset the allocator (invalidates all previous allocations). */
    void reset() { next_ = 0; }

    /** Bytes currently allocated. */
    int64_t used() const { return next_; }

    /** Pool capacity in bytes. */
    int64_t capacity() const { return capacity_; }

    /** Host pointer backing a device address (fp32 view). */
    float*
    f32(DevPtr p)
    {
        ASTRA_ASSERT(p >= 0 && p < capacity_, "bad device pointer");
        return reinterpret_cast<float*>(pool_.get() + p);
    }
    const float*
    f32(DevPtr p) const
    {
        ASTRA_ASSERT(p >= 0 && p < capacity_, "bad device pointer");
        return reinterpret_cast<const float*>(pool_.get() + p);
    }

    /** Host pointer backing a device address (i32 view). */
    int32_t*
    i32(DevPtr p)
    {
        ASTRA_ASSERT(p >= 0 && p < capacity_, "bad device pointer");
        return reinterpret_cast<int32_t*>(pool_.get() + p);
    }

    /** True when b starts exactly where a (of `a_bytes` bytes) ends. */
    static bool
    adjacent(DevPtr a, int64_t a_bytes, DevPtr b)
    {
        return a >= 0 && b >= 0 && a + a_bytes == b;
    }

  private:
    int64_t capacity_;
    int64_t next_ = 0;
    std::unique_ptr<uint8_t[]> pool_;
};

}  // namespace astra
