/**
 * @file
 * Conservative multi-device co-simulation.
 *
 * MultiSim steps N SimGpu instances in lockstep against a shared
 * horizon so cross-device signals (mirrored events — the simulator's
 * stand-in for NCCL's device-to-device synchronization) are delivered
 * in causal order. Each device advances only to the global minimum
 * next-event time, so no device can run past the moment a peer's
 * record becomes visible to it.
 *
 * The interconnect itself is not a separate entity: each device's comm
 * stream is its link endpoint (a FIFO queue serializes transfers, as a
 * full-duplex ring link does), and transfer latency/bandwidth is
 * charged by the comm kernels the dispatcher enqueues (see
 * kernels/cost.h comm_transfer_cost).
 */
#pragma once

#include <memory>
#include <vector>

#include "sim/gpu.h"

namespace astra {

/**
 * One ring-interconnect link (defaults approximate a single-lane
 * NVLink-class pipe with software latency).
 *
 * NOTE: link_gbps is giga*bits* per second — the unit networks are
 * quoted in — not gigabytes. 1 Gbit/s moves one bit per nanosecond,
 * so transferring B bytes takes B * 8 / link_gbps ns plus latency.
 */
struct LinkConfig
{
    double link_gbps = 12.0;   ///< gigabits per second, per link
    double latency_us = 10.0;  ///< per-message software + wire latency
};

/** Pure wire time for one message of `bytes` over a link, in ns. */
double link_transfer_ns(double bytes, const LinkConfig& link);

/** Co-simulates a group of SimGpu devices with cross-device events. */
class MultiSim
{
  public:
    /** Create `count` devices, all with the same config. */
    MultiSim(int count, const GpuConfig& config);

    int num_devices() const { return static_cast<int>(devices_.size()); }

    SimGpu& device(int i) { return *devices_[static_cast<size_t>(i)]; }
    const SimGpu& device(int i) const
    {
        return *devices_[static_cast<size_t>(i)];
    }

    /**
     * Mirror: when `src_event` on device `src` is recorded, record
     * `dst_event` on device `dst` at the same timestamp. This is how a
     * ring-allreduce step on one device gates its neighbour: the
     * receiver waits on its local dst_event, which fires only once the
     * sender's record executes. Both events must be unrecorded when
     * the mirror is registered.
     */
    void mirror(int src, EventId src_event, int dst, EventId dst_event);

    /**
     * Run every device to completion, delivering mirrors in causal
     * order. Panics on deadlock (a device blocked on a cross-device
     * event whose source chain can never fire).
     */
    void run();

    /** Max simulated time across devices; meaningful after run(). */
    double now_ns() const;

    /** Drop delivered mirrors and reset per-device events. */
    void reset_events();

    /**
     * Arm straggler detection: a mirrored event whose receiver has
     * already idled past the sender's record time by more than
     * `timeout_ns` when the mirror is delivered counts as a straggler
     * observation (the co-simulated analogue of a NCCL watchdog
     * timeout). 0 disables detection.
     */
    void set_straggler_timeout(double timeout_ns)
    {
        straggler_timeout_ns_ = timeout_ns;
    }

    /** Mirror deliveries that exceeded the straggler timeout. */
    int64_t straggler_events() const { return straggler_events_; }

  private:
    struct Mirror
    {
        int src = -1;
        EventId src_event = -1;
        int dst = -1;
        EventId dst_event = -1;
        bool delivered = false;
    };

    /** Deliver newly-recorded mirrors; true if anything was delivered. */
    bool deliver_mirrors();

    std::vector<std::unique_ptr<SimGpu>> devices_;
    std::vector<Mirror> mirrors_;
    double straggler_timeout_ns_ = 0.0;
    int64_t straggler_events_ = 0;
};

}  // namespace astra
