#include "sim/memory.h"

#include <cstring>

namespace astra {

SimMemory::SimMemory(int64_t bytes, bool zero)
    : capacity_(bytes), pool_(new uint8_t[static_cast<size_t>(bytes)])
{
    if (zero)
        std::memset(pool_.get(), 0, static_cast<size_t>(bytes));
}

DevPtr
SimMemory::allocate(int64_t bytes, int64_t align)
{
    ASTRA_ASSERT(bytes >= 0 && align > 0);
    const int64_t base = (next_ + align - 1) / align * align;
    if (base + bytes > capacity_) {
        fatal("simulated HBM exhausted: need ", bytes, " bytes at ", base,
              " of ", capacity_);
    }
    next_ = base + bytes;
    return base;
}

}  // namespace astra
