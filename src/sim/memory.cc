#include "sim/memory.h"

#include <cstring>
#include <sstream>

namespace astra {

namespace {

std::string
memory_error_message(MemoryError::Kind kind, int64_t requested,
                     int64_t capacity)
{
    std::ostringstream os;
    switch (kind) {
      case MemoryError::Kind::Exhausted:
        os << "simulated HBM exhausted: need " << requested
           << " bytes of " << capacity;
        break;
      case MemoryError::Kind::BadPointer:
        os << "bad device pointer " << requested << " (capacity "
           << capacity << ")";
        break;
      case MemoryError::Kind::Injected:
        os << "injected allocation fault: " << requested << " bytes of "
           << capacity;
        break;
    }
    return os.str();
}

}  // namespace

MemoryError::MemoryError(Kind kind, int64_t requested, int64_t capacity)
    : std::runtime_error(memory_error_message(kind, requested, capacity)),
      kind_(kind), requested_(requested), capacity_(capacity)
{
}

SimMemory::SimMemory(int64_t bytes, bool zero)
    : capacity_(bytes), pool_(new uint8_t[static_cast<size_t>(bytes)])
{
    if (zero)
        std::memset(pool_.get(), 0, static_cast<size_t>(bytes));
}

void
SimMemory::arm_faults(const FaultPlan* plan, uint64_t salt)
{
    injector_ = FaultInjector(plan, salt);
}

int64_t
SimMemory::effective_capacity() const
{
    const double headroom = injector_.alloc_headroom();
    if (headroom <= 1.0)
        return capacity_;
    return static_cast<int64_t>(static_cast<double>(capacity_) /
                                headroom);
}

DevPtr
SimMemory::allocate(int64_t bytes, int64_t align)
{
    ASTRA_ASSERT(bytes >= 0 && align > 0);
    if (injector_.on_alloc())
        throw MemoryError(MemoryError::Kind::Injected, bytes, capacity_);
    const int64_t base = (next_ + align - 1) / align * align;
    if (base + bytes > effective_capacity())
        throw MemoryError(MemoryError::Kind::Exhausted, bytes,
                          effective_capacity());
    next_ = base + bytes;
    return base;
}

}  // namespace astra
