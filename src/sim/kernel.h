/**
 * @file
 * Kernel descriptor consumed by the GPU simulator.
 *
 * A kernel is (a) a cost shape — how many parallel blocks of work it
 * carries and how long one block takes on one SM — and (b) a host-side
 * compute callback that produces the kernel's real FP32 result. The
 * callback runs when the kernel *starts* executing on the device, so a
 * schedule with a missing dependency reads stale producer data and is
 * caught by the value-preservation tests, exactly like a real data race.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace astra {

/** One device kernel launch. */
struct KernelDesc
{
    /** Debug/trace label, e.g. "mm.%42.cublas". */
    std::string name;

    /**
     * Number of thread blocks (units of parallel work). Must be >= 0;
     * 0 means the kernel holds no SMs and is pure setup time — how
     * copy-engine/NIC transfers (comm_transfer_cost) are modelled.
     */
    int64_t blocks = 1;

    /** Time for one block on one SM, in nanoseconds. */
    double block_ns = 0.0;

    /** Serial on-device setup (pipeline fill) before blocks start. */
    double setup_ns = 0.0;

    /**
     * Occupancy cap: at most this many SMs may run this kernel's blocks
     * concurrently (register/shared-memory pressure). 0 = no cap.
     */
    int max_sms = 0;

    /** Host-side computation of the kernel's actual result. */
    std::function<void()> compute;

    /**
     * Profile-index key of the plan step that launched this kernel
     * ("" when the launch is not plan-keyed). Carried into collected
     * trace spans so recorded traces can cross-reference ProfileIndex
     * statistics (what-if replay, §5.13).
     */
    std::string key;
};

}  // namespace astra
