#include "sim/trace.h"

#include <ostream>

namespace astra {

namespace {

/** Minimal JSON string escaping for kernel names. */
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

void
write_chrome_trace(std::ostream& os, const std::vector<TraceSpan>& spans)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceSpan& s : spans) {
        if (!first)
            os << ",";
        first = false;
        // Durations in the chrome format are microseconds.
        os << "{\"name\":\"" << escape(s.name)
           << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":"
           << s.start_ns / 1e3 << ",\"dur\":"
           << (s.end_ns - s.start_ns) / 1e3
           << ",\"pid\":0,\"tid\":" << s.stream << "}";
    }
    os << "],\"displayTimeUnit\":\"ns\"}";
}

}  // namespace astra
