#include "sim/faults.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace astra {

namespace {

/** Whole-string double parse; false on empty/junk/negative. */
bool
parse_num(const std::string& s, double* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() || v < 0.0)
        return false;
    *out = v;
    return true;
}

bool
parse_i64(const std::string& s, int64_t* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size() || v < 0)
        return false;
    *out = v;
    return true;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
kind_from_name(const std::string& name, FaultKind* out)
{
    if (name == "kernel")
        *out = FaultKind::Kernel;
    else if (name == "straggler")
        *out = FaultKind::Straggler;
    else if (name == "alloc")
        *out = FaultKind::Alloc;
    else if (name == "comm")
        *out = FaultKind::Comm;
    else
        return false;
    return true;
}

}  // namespace

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Kernel:
        return "kernel";
      case FaultKind::Straggler:
        return "straggler";
      case FaultKind::Alloc:
        return "alloc";
      case FaultKind::Comm:
        return "comm";
    }
    return "?";
}

bool
FaultPlan::has(FaultKind kind) const
{
    for (const FaultSpec& s : specs)
        if (s.kind == kind)
            return true;
    return false;
}

namespace {

/**
 * Per-clause parse context: stamps every diagnostic with "token N"
 * (the 1-based ';'-separated clause index, matching the config_io
 * "line N: reason" convention) and tracks which keys the clause has
 * already consumed so duplicates are a named error, not a silent
 * last-one-wins.
 */
struct ClauseCtx
{
    int token = 0;
    std::string* error = nullptr;
    std::vector<std::string> seen;

    bool
    fail(const std::string& reason)
    {
        if (error != nullptr)
            *error = "token " + std::to_string(token) + ": " + reason;
        return false;
    }

    /** Records the key; false (with a diagnosis) on a duplicate. */
    bool
    once(const std::string& key)
    {
        for (const std::string& s : seen)
            if (s == key)
                return fail("duplicate key '" + key + "'");
        seen.push_back(key);
        return true;
    }
};

/** Split "key=value"; false (with diagnosis) when '=' is missing. */
bool
split_kv(ClauseCtx& ctx, const std::string& field, std::string* key,
         std::string* val)
{
    const size_t eq = field.find('=');
    if (eq == std::string::npos)
        return ctx.fail("malformed field '" + field +
                        "' (expected key=value)");
    *key = field.substr(0, eq);
    *val = field.substr(eq + 1);
    return true;
}

}  // namespace

bool
FaultPlan::parse(const std::string& spec, FaultPlan* out,
                 std::string* error)
{
    FaultPlan plan;
    ClauseCtx globals;  // duplicate tracking across global clauses
    globals.error = error;
    const std::vector<std::string> clauses = split(spec, ';');
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
        const std::string& clause = clauses[ci];
        ClauseCtx ctx;
        ctx.token = static_cast<int>(ci) + 1;
        ctx.error = error;
        globals.token = ctx.token;
        if (clause.empty())
            continue;
        const size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            // Global clause: key=value.
            std::string key, val;
            if (!split_kv(ctx, clause, &key, &val))
                return false;
            if (!globals.once(key))
                return false;
            if (key == "seed") {
                int64_t v = 0;
                if (!parse_i64(val, &v))
                    return ctx.fail("seed must be a non-negative "
                                    "integer, got '" + val + "'");
                plan.seed = static_cast<uint64_t>(v);
            } else if (key == "retries") {
                int64_t v = 0;
                if (!parse_i64(val, &v) || v > 1000)
                    return ctx.fail("retries out of range [0, 1000], "
                                    "got '" + val + "'");
                plan.max_retries = static_cast<int>(v);
            } else if (key == "backoff_us") {
                if (!parse_num(val, &plan.backoff_us))
                    return ctx.fail("backoff_us must be a non-negative "
                                    "number, got '" + val + "'");
            } else {
                return ctx.fail("unknown key '" + key + "'");
            }
            continue;
        }
        const std::string kind_name = clause.substr(0, colon);
        if (kind_name == "replica_death" || kind_name == "replica_flap") {
            ReplicaFaultSpec rs;
            rs.flap = kind_name == "replica_flap";
            bool have_r = false, have_at = false, have_down = false;
            for (const std::string& field :
                 split(clause.substr(colon + 1), ',')) {
                std::string key, val;
                if (!split_kv(ctx, field, &key, &val))
                    return false;
                if (!ctx.once(key))
                    return false;
                int64_t iv = 0;
                if (key == "r") {
                    if (!parse_i64(val, &iv) || iv > 4096)
                        return ctx.fail("r out of range [0, 4096], "
                                        "got '" + val + "'");
                    rs.replica = static_cast<int>(iv);
                    have_r = true;
                } else if (key == "at_ns") {
                    if (!parse_num(val, &rs.at_ns))
                        return ctx.fail("at_ns must be a non-negative "
                                        "number, got '" + val + "'");
                    have_at = true;
                } else if (key == "down_ns" && rs.flap) {
                    if (!parse_num(val, &rs.down_ns) || rs.down_ns <= 0.0)
                        return ctx.fail("down_ns must be > 0, got '" +
                                        val + "'");
                    have_down = true;
                } else if (key == "up_ns" && rs.flap) {
                    if (!parse_num(val, &rs.up_ns))
                        return ctx.fail("up_ns must be a non-negative "
                                        "number, got '" + val + "'");
                } else if (key == "count" && rs.flap) {
                    if (!parse_i64(val, &iv) || iv < 1)
                        return ctx.fail("count must be >= 1, got '" +
                                        val + "'");
                    rs.count = iv;
                } else {
                    return ctx.fail("unknown key '" + key + "' for " +
                                    kind_name);
                }
            }
            if (!have_r || !have_at)
                return ctx.fail(kind_name + " needs r= and at_ns=");
            if (rs.flap && !have_down)
                return ctx.fail("replica_flap needs down_ns=");
            if (rs.flap && rs.up_ns <= 0.0 &&
                (rs.count < 0 || rs.count > 1))
                return ctx.fail("replica_flap with up_ns=0 never "
                                "revives; use replica_death");
            plan.replica_faults.push_back(rs);
            continue;
        }
        FaultSpec fs;
        if (!kind_from_name(kind_name, &fs.kind))
            return ctx.fail("unknown fault kind '" + kind_name + "'");
        bool fires_ever = false;
        for (const std::string& field :
             split(clause.substr(colon + 1), ',')) {
            std::string key, val;
            if (!split_kv(ctx, field, &key, &val))
                return false;
            if (!ctx.once(key))
                return false;
            if (key == "p") {
                if (!parse_num(val, &fs.p) || fs.p > 1.0)
                    return ctx.fail("p out of range [0, 1], got '" +
                                    val + "'");
                fires_ever = true;
            } else if (key == "x") {
                if (!parse_num(val, &fs.factor) || fs.factor < 1.0)
                    return ctx.fail("x must be >= 1, got '" + val +
                                    "'");
            } else if (key == "at") {
                if (!parse_i64(val, &fs.at))
                    return ctx.fail("at must be a non-negative "
                                    "integer, got '" + val + "'");
                fires_ever = true;
            } else if (key == "name") {
                if (val.empty())
                    return ctx.fail("name must be non-empty");
                fs.name = val;
            } else {
                return ctx.fail("unknown key '" + key + "'");
            }
        }
        if (!fires_ever)
            return ctx.fail("spec never fires (needs p= or at=)");
        plan.specs.push_back(std::move(fs));
    }
    *out = std::move(plan);
    return true;
}

const FaultPlan&
FaultPlan::from_env()
{
    static const FaultPlan plan = [] {
        FaultPlan p;
        const char* v = std::getenv("ASTRA_FAULTS");
        if (v != nullptr && *v != '\0') {
            // Malformed -> stay fault-free: a bad env spec must never
            // crash every binary, but it should not fail silently
            // either.
            std::string error;
            if (!FaultPlan::parse(v, &p, &error))
                std::fprintf(stderr,
                             "ASTRA_FAULTS ignored (malformed): %s\n",
                             error.c_str());
        }
        return p;
    }();
    return plan;
}

std::string
FaultPlan::to_string() const
{
    std::ostringstream os;
    os << "seed=" << seed << ";retries=" << max_retries
       << ";backoff_us=" << backoff_us;
    for (const FaultSpec& s : specs) {
        os << ";" << fault_kind_name(s.kind) << ":p=" << s.p;
        if (s.factor != 1.0)
            os << ",x=" << s.factor;
        if (s.at >= 0)
            os << ",at=" << s.at;
        if (!s.name.empty())
            os << ",name=" << s.name;
    }
    for (const ReplicaFaultSpec& r : replica_faults) {
        if (!r.flap) {
            os << ";replica_death:r=" << r.replica << ",at_ns="
               << r.at_ns;
            continue;
        }
        os << ";replica_flap:r=" << r.replica << ",at_ns=" << r.at_ns
           << ",down_ns=" << r.down_ns;
        if (r.up_ns > 0.0)
            os << ",up_ns=" << r.up_ns;
        if (r.count >= 1)
            os << ",count=" << r.count;
    }
    return os.str();
}

namespace {

/** Is `t_ns` inside one of this spec's down intervals? */
bool
spec_down(const ReplicaFaultSpec& s, double t_ns)
{
    if (t_ns < s.at_ns)
        return false;
    if (!s.flap)
        return true;  // death: down forever from the edge
    const double period = s.down_ns + s.up_ns;
    if (period <= 0.0)
        return true;
    const double since = t_ns - s.at_ns;
    const double cycle = std::floor(since / period);
    if (s.count >= 1 && cycle >= static_cast<double>(s.count))
        return false;  // past the last down interval
    return since - cycle * period < s.down_ns;
}

}  // namespace

bool
replica_alive(const FaultPlan& plan, int replica, double t_ns)
{
    for (const ReplicaFaultSpec& s : plan.replica_faults)
        if (s.replica == replica && spec_down(s, t_ns))
            return false;
    return true;
}

std::vector<double>
replica_transitions(const FaultPlan& plan, int replica,
                    double horizon_ns)
{
    std::vector<double> edges;
    for (const ReplicaFaultSpec& s : plan.replica_faults) {
        if (s.replica != replica)
            continue;
        if (!s.flap) {
            if (s.at_ns < horizon_ns)
                edges.push_back(s.at_ns);
            continue;
        }
        const double period = s.down_ns + s.up_ns;
        const int64_t cycles =
            s.count >= 1 ? s.count
                         : static_cast<int64_t>(
                               std::ceil((horizon_ns - s.at_ns) /
                                         std::max(period, 1.0)) +
                               1);
        for (int64_t k = 0; k < cycles; ++k) {
            const double down = s.at_ns + static_cast<double>(k) * period;
            if (down >= horizon_ns)
                break;
            edges.push_back(down);
            const double up = down + s.down_ns;
            if (up < horizon_ns)
                edges.push_back(up);
        }
    }
    std::sort(edges.begin(), edges.end());
    // Candidate edges from overlapping specs may not all change net
    // liveness; keep only those where alive() actually flips.
    std::vector<double> out;
    bool alive = replica_alive(plan, replica, 0.0);
    for (double e : edges) {
        // Probe just after the edge (half an epsilon of the smallest
        // interval is overkill; specs are coarse-grained ns schedules).
        const bool after = replica_alive(plan, replica, e + 1e-3);
        if (after != alive) {
            out.push_back(e);
            alive = after;
        }
    }
    return out;
}

uint64_t
fault_mix(uint64_t seed, uint64_t value)
{
    // splitmix64 finalizer over the combined pair.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (value + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
FaultInjector::draw(FaultKind kind, uint64_t seq) const
{
    const uint64_t h = fault_mix(
        fault_mix(fault_mix(plan_->seed, salt_),
                  static_cast<uint64_t>(kind) + 1),
        seq);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultInjector::fires(const FaultSpec& spec, uint64_t seq) const
{
    if (spec.at >= 0)
        return seq == static_cast<uint64_t>(spec.at);
    return spec.p > 0.0 && draw(spec.kind, seq) < spec.p;
}

KernelFault
FaultInjector::on_kernel(const std::string& name)
{
    KernelFault out;
    if (!armed())
        return out;
    // Kernel and straggler specs share the launch sequence but draw on
    // independent hash dimensions (the kind term), so a kernel-fail
    // draw never correlates with a straggler draw at the same launch.
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Kernel)]++;
    for (const FaultSpec& s : plan_->specs) {
        if (!s.name.empty() && name.find(s.name) == std::string::npos)
            continue;
        if (s.kind == FaultKind::Kernel && fires(s, seq))
            out.fail = true;
        else if (s.kind == FaultKind::Straggler && fires(s, seq))
            out.slowdown *= s.factor;
    }
    return out;
}

bool
FaultInjector::on_alloc()
{
    if (!armed())
        return false;
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Alloc)]++;
    for (const FaultSpec& s : plan_->specs)
        if (s.kind == FaultKind::Alloc && fires(s, seq))
            return true;
    return false;
}

double
FaultInjector::on_comm()
{
    if (!armed())
        return 1.0;
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Comm)]++;
    double factor = 1.0;
    for (const FaultSpec& s : plan_->specs)
        if (s.kind == FaultKind::Comm && fires(s, seq))
            factor *= s.factor;
    return factor;
}

double
FaultInjector::alloc_headroom() const
{
    double headroom = 1.0;
    if (armed())
        for (const FaultSpec& s : plan_->specs)
            if (s.kind == FaultKind::Alloc && s.factor > headroom)
                headroom = s.factor;
    return headroom;
}

}  // namespace astra
