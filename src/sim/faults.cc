#include "sim/faults.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace astra {

namespace {

/** Whole-string double parse; false on empty/junk/negative. */
bool
parse_num(const std::string& s, double* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() || v < 0.0)
        return false;
    *out = v;
    return true;
}

bool
parse_i64(const std::string& s, int64_t* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size() || v < 0)
        return false;
    *out = v;
    return true;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
kind_from_name(const std::string& name, FaultKind* out)
{
    if (name == "kernel")
        *out = FaultKind::Kernel;
    else if (name == "straggler")
        *out = FaultKind::Straggler;
    else if (name == "alloc")
        *out = FaultKind::Alloc;
    else if (name == "comm")
        *out = FaultKind::Comm;
    else
        return false;
    return true;
}

}  // namespace

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Kernel:
        return "kernel";
      case FaultKind::Straggler:
        return "straggler";
      case FaultKind::Alloc:
        return "alloc";
      case FaultKind::Comm:
        return "comm";
    }
    return "?";
}

bool
FaultPlan::has(FaultKind kind) const
{
    for (const FaultSpec& s : specs)
        if (s.kind == kind)
            return true;
    return false;
}

bool
FaultPlan::parse(const std::string& spec, FaultPlan* out)
{
    FaultPlan plan;
    for (const std::string& clause : split(spec, ';')) {
        if (clause.empty())
            continue;
        const size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            // Global clause: key=value.
            const size_t eq = clause.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = clause.substr(0, eq);
            const std::string val = clause.substr(eq + 1);
            if (key == "seed") {
                int64_t v = 0;
                if (!parse_i64(val, &v))
                    return false;
                plan.seed = static_cast<uint64_t>(v);
            } else if (key == "retries") {
                int64_t v = 0;
                if (!parse_i64(val, &v) || v > 1000)
                    return false;
                plan.max_retries = static_cast<int>(v);
            } else if (key == "backoff_us") {
                if (!parse_num(val, &plan.backoff_us))
                    return false;
            } else {
                return false;  // unknown key: refuse rather than guess
            }
            continue;
        }
        FaultSpec fs;
        if (!kind_from_name(clause.substr(0, colon), &fs.kind))
            return false;
        bool fires_ever = false;
        for (const std::string& field :
             split(clause.substr(colon + 1), ',')) {
            const size_t eq = field.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = field.substr(0, eq);
            const std::string val = field.substr(eq + 1);
            if (key == "p") {
                if (!parse_num(val, &fs.p) || fs.p > 1.0)
                    return false;
                fires_ever = true;
            } else if (key == "x") {
                if (!parse_num(val, &fs.factor) || fs.factor < 1.0)
                    return false;
            } else if (key == "at") {
                if (!parse_i64(val, &fs.at))
                    return false;
                fires_ever = true;
            } else if (key == "name") {
                if (val.empty())
                    return false;
                fs.name = val;
            } else {
                return false;
            }
        }
        if (!fires_ever)
            return false;  // a spec with no trigger is a typo
        plan.specs.push_back(std::move(fs));
    }
    *out = std::move(plan);
    return true;
}

const FaultPlan&
FaultPlan::from_env()
{
    static const FaultPlan plan = [] {
        FaultPlan p;
        const char* v = std::getenv("ASTRA_FAULTS");
        if (v != nullptr && *v != '\0')
            FaultPlan::parse(v, &p);  // malformed -> stay fault-free
        return p;
    }();
    return plan;
}

std::string
FaultPlan::to_string() const
{
    std::ostringstream os;
    os << "seed=" << seed << ";retries=" << max_retries
       << ";backoff_us=" << backoff_us;
    for (const FaultSpec& s : specs) {
        os << ";" << fault_kind_name(s.kind) << ":p=" << s.p;
        if (s.factor != 1.0)
            os << ",x=" << s.factor;
        if (s.at >= 0)
            os << ",at=" << s.at;
        if (!s.name.empty())
            os << ",name=" << s.name;
    }
    return os.str();
}

uint64_t
fault_mix(uint64_t seed, uint64_t value)
{
    // splitmix64 finalizer over the combined pair.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (value + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
FaultInjector::draw(FaultKind kind, uint64_t seq) const
{
    const uint64_t h = fault_mix(
        fault_mix(fault_mix(plan_->seed, salt_),
                  static_cast<uint64_t>(kind) + 1),
        seq);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultInjector::fires(const FaultSpec& spec, uint64_t seq) const
{
    if (spec.at >= 0)
        return seq == static_cast<uint64_t>(spec.at);
    return spec.p > 0.0 && draw(spec.kind, seq) < spec.p;
}

KernelFault
FaultInjector::on_kernel(const std::string& name)
{
    KernelFault out;
    if (!armed())
        return out;
    // Kernel and straggler specs share the launch sequence but draw on
    // independent hash dimensions (the kind term), so a kernel-fail
    // draw never correlates with a straggler draw at the same launch.
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Kernel)]++;
    for (const FaultSpec& s : plan_->specs) {
        if (!s.name.empty() && name.find(s.name) == std::string::npos)
            continue;
        if (s.kind == FaultKind::Kernel && fires(s, seq))
            out.fail = true;
        else if (s.kind == FaultKind::Straggler && fires(s, seq))
            out.slowdown *= s.factor;
    }
    return out;
}

bool
FaultInjector::on_alloc()
{
    if (!armed())
        return false;
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Alloc)]++;
    for (const FaultSpec& s : plan_->specs)
        if (s.kind == FaultKind::Alloc && fires(s, seq))
            return true;
    return false;
}

double
FaultInjector::on_comm()
{
    if (!armed())
        return 1.0;
    const uint64_t seq = seq_[static_cast<int>(FaultKind::Comm)]++;
    double factor = 1.0;
    for (const FaultSpec& s : plan_->specs)
        if (s.kind == FaultKind::Comm && fires(s, seq))
            factor *= s.factor;
    return factor;
}

double
FaultInjector::alloc_headroom() const
{
    double headroom = 1.0;
    if (armed())
        for (const FaultSpec& s : plan_->specs)
            if (s.kind == FaultKind::Alloc && s.factor > headroom)
                headroom = s.factor;
    return headroom;
}

}  // namespace astra
