#include "sim/multi.h"

#include <limits>

#include "support/logging.h"

namespace astra {

double
link_transfer_ns(double bytes, const LinkConfig& link)
{
    ASTRA_ASSERT(link.link_gbps > 0.0);
    // link_gbps is gigabits/s: 1 Gbit/s == 1 bit/ns, so ns = bits/gbps.
    return bytes * 8.0 / link.link_gbps + link.latency_us * 1e3;
}

MultiSim::MultiSim(int count, const GpuConfig& config)
{
    ASTRA_ASSERT(count >= 1, "MultiSim needs at least one device");
    devices_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        // Each physical GPU boosts independently: salt the jitter seed
        // per device so co-simulated devices draw distinct, seed-stable
        // sequences (SimGpu itself no longer carries global state).
        GpuConfig dev_cfg = config;
        dev_cfg.autoboost_seed +=
            ClockDomain::kSeedMix * static_cast<uint64_t>(i);
        // Same rule for fault injection: each device is its own fault
        // domain with a seed-stable, device-indexed salt.
        if (dev_cfg.fault_salt != 0)
            dev_cfg.fault_salt +=
                ClockDomain::kSeedMix * static_cast<uint64_t>(i);
        devices_.push_back(std::make_unique<SimGpu>(dev_cfg));
    }
}

void
MultiSim::mirror(int src, EventId src_event, int dst, EventId dst_event)
{
    ASTRA_ASSERT(src >= 0 && src < num_devices());
    ASTRA_ASSERT(dst >= 0 && dst < num_devices());
    ASTRA_ASSERT(src != dst, "mirror source and destination must differ");
    ASTRA_ASSERT(!device(src).event_recorded(src_event),
                 "mirror registered after source event already recorded");
    mirrors_.push_back({src, src_event, dst, dst_event, false});
}

bool
MultiSim::deliver_mirrors()
{
    bool delivered = false;
    for (Mirror& m : mirrors_) {
        if (m.delivered)
            continue;
        SimGpu& src = device(m.src);
        if (!src.event_recorded(m.src_event))
            continue;
        const double t = src.event_time_ns(m.src_event);
        // Straggler watchdog: the receiver sat at now_ns() waiting for
        // a signal that only fired at t — a wait beyond the timeout
        // marks the sender as straggling on this step.
        if (straggler_timeout_ns_ > 0.0 &&
            t - device(m.dst).now_ns() > straggler_timeout_ns_)
            ++straggler_events_;
        device(m.dst).record_external(m.dst_event, t);
        m.delivered = true;
        delivered = true;
    }
    return delivered;
}

void
MultiSim::run()
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double horizon = 0.0;
    while (true) {
        std::vector<SimGpu::RunState> states;
        states.reserve(devices_.size());
        for (auto& d : devices_)
            states.push_back(d->run_until(horizon));

        // Newly-recorded events may unblock peers at this same horizon,
        // so re-run before advancing time.
        if (deliver_mirrors())
            continue;

        bool all_drained = true;
        double next = kInf;
        for (size_t i = 0; i < devices_.size(); ++i) {
            if (states[i] == SimGpu::RunState::Drained)
                continue;
            all_drained = false;
            if (states[i] == SimGpu::RunState::Paused)
                next = std::min(next, devices_[i]->next_event_ns());
        }
        if (all_drained)
            break;
        if (next == kInf)
            panic("MultiSim deadlock: devices blocked on cross-device "
                  "events that will never be recorded");
        horizon = next;
    }
}

double
MultiSim::now_ns() const
{
    double t = 0.0;
    for (const auto& d : devices_)
        t = std::max(t, d->now_ns());
    return t;
}

void
MultiSim::reset_events()
{
    mirrors_.clear();
    for (auto& d : devices_)
        d->reset_events();
}

}  // namespace astra
