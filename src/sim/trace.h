/**
 * @file
 * Execution-timeline capture for the simulated device.
 *
 * When enabled, the simulator records one span per kernel (name,
 * stream, start, end in simulated time). write_chrome_trace() renders
 * the spans in the Chrome trace-event JSON format, so a schedule can
 * be inspected in chrome://tracing or Perfetto — the visual version of
 * what Astra's fine-grained profiling measures.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace astra {

/** One executed kernel on the simulated timeline. */
struct TraceSpan
{
    std::string name;
    int stream = 0;
    double start_ns = 0.0;
    double end_ns = 0.0;
};

/** Render spans as a Chrome trace-event JSON document. */
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSpan>& spans);

}  // namespace astra
