/**
 * @file
 * Execution-timeline capture for the simulated device.
 *
 * The span type and the Chrome trace-event exporter migrated to the
 * observability layer (obs/obs.h, obs/export.h) so device kernel
 * spans and host-side spans can share one timeline; this header stays
 * as the simulator-facing spelling. astra::TraceSpan and
 * astra::write_chrome_trace resolve to the obs-layer definitions.
 */
#pragma once

#include "obs/export.h"
