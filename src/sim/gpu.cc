#include "sim/gpu.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

bool
sim_autoboost_env()
{
    static const bool on = [] {
        const char* v = std::getenv("ASTRA_SIM_AUTOBOOST");
        return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
    }();
    return on;
}

SimGpu::SimGpu(GpuConfig config)
    : config_(std::move(config)),
      injector_(&config_.faults, config_.fault_salt),
      boost_rng_(config_.autoboost_seed)
{
    streams_.emplace_back();  // default stream 0
}

StreamId
SimGpu::create_stream()
{
    streams_.emplace_back();
    return static_cast<StreamId>(streams_.size() - 1);
}

EventId
SimGpu::create_event()
{
    event_times_.push_back(-1.0);
    return static_cast<EventId>(event_times_.size() - 1);
}

void
SimGpu::launch(StreamId stream, KernelDesc kernel)
{
    ASTRA_ASSERT(stream >= 0 && stream < num_streams(), "bad stream");
    ASTRA_ASSERT(kernel.blocks >= 0 && kernel.block_ns >= 0.0,
                 "bad kernel cost for ", kernel.name);
    Command cmd;
    cmd.type = CmdType::Launch;
    cmd.kernel = std::move(kernel);
    if (injector_.armed()) {
        const KernelFault fault = injector_.on_kernel(cmd.kernel.name);
        if (fault.fail) {
            cmd.faulted = true;
            ++stats_.faults_injected;
        }
        if (fault.slowdown > 1.0) {
            // A straggler spike stretches the kernel's own execution;
            // the launch front-end is unaffected.
            cmd.kernel.setup_ns *= fault.slowdown;
            cmd.kernel.block_ns *= fault.slowdown;
            ++stats_.straggler_events;
        }
    }
    // Launches are consumed sequentially by the device front-end; a
    // kernel may not begin before its command is through the pipe.
    // When kernels are long the pipe runs ahead and the overhead
    // disappears; when they are tiny the SMs starve on it
    // (launch-bound regime, §2.3). The front-end rides the same clock
    // as the SMs, so the whole timeline scales with DVFS state.
    host_time_ += config_.launch_overhead_ns * begin_command();
    cmd.ready_at = host_time_;
    streams_[static_cast<size_t>(stream)].queue.push_back(std::move(cmd));
    if (obs::enabled()) {
        static obs::Counter& launches =
            obs::counter("sim.kernels_launched");
        launches.add();
        // Per-stream tallies: launch() is the hottest simulator entry
        // point (every kernel of every mini-batch), so the string-keyed
        // registry lookup — and the name formatting feeding it — must
        // not run per launch. Cache resolved handles for the small
        // stream ids; counters are never destroyed, so a published
        // pointer stays valid for the process lifetime.
        static constexpr int kCachedStreams = 16;
        static std::array<std::atomic<obs::Counter*>, kCachedStreams>
            per_stream{};
        obs::Counter* sc = nullptr;
        if (stream >= 0 && stream < kCachedStreams) {
            sc = per_stream[static_cast<size_t>(stream)].load(
                std::memory_order_acquire);
            if (sc == nullptr) {
                sc = &obs::counter("sim.kernels_launched.stream" +
                                   std::to_string(stream));
                per_stream[static_cast<size_t>(stream)].store(
                    sc, std::memory_order_release);
            }
        } else {
            sc = &obs::counter("sim.kernels_launched.stream" +
                               std::to_string(stream));
        }
        sc->add();
    }
}

void
SimGpu::record_event(StreamId stream, EventId event)
{
    ASTRA_ASSERT(stream >= 0 && stream < num_streams(), "bad stream");
    ASTRA_ASSERT(event >= 0 &&
                 event < static_cast<EventId>(event_times_.size()));
    Command cmd;
    cmd.type = CmdType::Record;
    cmd.event = event;
    // Event commands share the sequential front-end pipe with kernel
    // launches — cheaper per command, but fine-grained profiling is
    // not free (§5.1).
    host_time_ += config_.event_enqueue_ns * begin_command();
    cmd.ready_at = host_time_;
    streams_[static_cast<size_t>(stream)].queue.push_back(std::move(cmd));
}

void
SimGpu::wait_event(StreamId stream, EventId event)
{
    ASTRA_ASSERT(stream >= 0 && stream < num_streams(), "bad stream");
    ASTRA_ASSERT(event >= 0 &&
                 event < static_cast<EventId>(event_times_.size()));
    Command cmd;
    cmd.type = CmdType::Wait;
    cmd.event = event;
    host_time_ += config_.event_enqueue_ns * begin_command();
    cmd.ready_at = host_time_;
    streams_[static_cast<size_t>(stream)].queue.push_back(std::move(cmd));
}

double
SimGpu::boost_factor() const
{
    return 1.0 / clock_m_;
}

double
SimGpu::begin_command()
{
    // DVFS state is re-evaluated between launch sequences (the
    // governor reacts far slower than a mini-batch): the first command
    // after a drain samples the clock, which then holds until the next
    // synchronize. Every timed quantity — front-end command cost,
    // kernel setup, block time, event record — scales by the same
    // factor, exactly like a core-clock change on hardware. A forced
    // multiplier (set per dispatch by a ClockDomain owner) replaces
    // the draw but keeps the same hold-until-drain dynamics.
    if (!clock_sampled_) {
        if (config_.forced_clock_multiplier > 0.0) {
            clock_m_ = config_.forced_clock_multiplier;
            clock_sampled_ = true;
        } else if (config_.autoboost) {
            clock_m_ = 1.0 + config_.autoboost_amplitude *
                                 boost_rng_.next_double();
            clock_sampled_ = true;
        }
    }
    return boost_factor();
}

bool
SimGpu::activate_ready()
{
    bool any = false;
    for (size_t s = 0; s < streams_.size(); ++s) {
        Stream& stream = streams_[s];
        while (stream.active < 0 && !stream.queue.empty()) {
            Command& head = stream.queue.front();
            // Every command waits for its host enqueue to complete.
            if (head.ready_at > now_)
                break;
            if (head.type == CmdType::Wait) {
                const double t =
                    event_times_[static_cast<size_t>(head.event)];
                if (t < 0.0 || t > now_)
                    break;  // not recorded yet: stream stalls
                stream.queue.pop_front();
                any = true;
                continue;
            }
            if (head.type == CmdType::Record) {
                Running r;
                r.stream = static_cast<int>(s);
                // Event records are device-side command processing and
                // ride the clock like any other work.
                r.serial_left = config_.event_record_ns * boost_factor();
                r.blocks_left = 0.0;
                r.is_event = true;
                r.event = head.event;
                stream.active = static_cast<int>(running_.size());
                running_.push_back(r);
                stream.queue.pop_front();
                any = true;
                break;
            }
            // The kernel's host-visible effects (its compute) happen
            // as it begins executing; a consumer scheduled without the
            // proper event dependency therefore reads stale data.
            const double boost = boost_factor();
            Running r;
            r.stream = static_cast<int>(s);
            r.serial_left = head.kernel.setup_ns * boost;
            r.blocks_left = static_cast<double>(head.kernel.blocks);
            r.blocks_total = r.blocks_left;
            r.block_ns = std::max(head.kernel.block_ns * boost, 1e-9);
            r.max_sms = head.kernel.max_sms > 0
                            ? std::min(head.kernel.max_sms, config_.num_sms)
                            : config_.num_sms;
            if (config_.execute_kernels && head.kernel.compute &&
                !head.faulted)
                head.kernel.compute();
            if (config_.collect_trace) {
                r.started_at = now_;
                r.name = head.kernel.name;
                r.key = head.kernel.key;
            }
            ++stats_.kernels_launched;
            stream.active = static_cast<int>(running_.size());
            running_.push_back(std::move(r));
            stream.queue.pop_front();
            any = true;
            break;
        }
    }
    return any;
}

void
SimGpu::waterfill()
{
    // Kernels still in their serial phase hold no SMs. The rest share
    // the pool: repeatedly grant each unsatisfied kernel an equal share,
    // capped by its own demand, until the pool or the demand runs out.
    std::vector<Running*> parallel;
    for (Running& r : running_) {
        r.alloc = 0.0;
        if (r.serial_left <= 0.0 && r.blocks_left > 0.0)
            parallel.push_back(&r);
    }
    double free = static_cast<double>(config_.num_sms);
    std::vector<double> demand(parallel.size());
    for (size_t i = 0; i < parallel.size(); ++i)
        // A kernel's resident footprint is its total block count (its
        // final wave holds the SMs until the blocks drain), capped by
        // its occupancy limit.
        demand[i] = std::min(static_cast<double>(parallel[i]->max_sms),
                             std::ceil(parallel[i]->blocks_total));
    std::vector<bool> done(parallel.size(), false);
    size_t remaining = parallel.size();
    while (remaining > 0 && free > 1e-12) {
        const double share = free / static_cast<double>(remaining);
        bool capped_any = false;
        for (size_t i = 0; i < parallel.size(); ++i) {
            if (done[i])
                continue;
            const double want = demand[i] - parallel[i]->alloc;
            if (want <= share + 1e-12) {
                parallel[i]->alloc += want;
                free -= want;
                done[i] = true;
                --remaining;
                capped_any = true;
            }
        }
        if (!capped_any) {
            for (size_t i = 0; i < parallel.size(); ++i) {
                if (!done[i]) {
                    parallel[i]->alloc += share;
                    free -= share;
                }
            }
            break;
        }
    }
}

void
SimGpu::synchronize()
{
    const RunState state =
        run_until(std::numeric_limits<double>::infinity());
    if (state == RunState::Blocked)
        panic("SimGpu deadlock: streams stalled on events that will "
              "never be recorded");
}

SimGpu::RunState
SimGpu::run_until(double t_stop)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    next_event_ = kInf;
    while (true) {
        activate_ready();

        // Idle streams bound the next event time: a head command still
        // being enqueued by the host, or a wait on an event recorded
        // (externally) at a future timestamp.
        double next_ready = kInf;
        for (const Stream& s : streams_) {
            if (s.active >= 0 || s.queue.empty())
                continue;
            const Command& head = s.queue.front();
            if (head.ready_at > now_) {
                next_ready = std::min(next_ready, head.ready_at);
            } else if (head.type == CmdType::Wait) {
                const double t =
                    event_times_[static_cast<size_t>(head.event)];
                if (t > now_)
                    next_ready = std::min(next_ready, t);
            }
        }

        if (running_.empty()) {
            bool pending = false;
            for (const Stream& s : streams_)
                pending |= !s.queue.empty();
            if (!pending) {
                stats_.elapsed_ns = now_;
                // Pipeline drained: the next launch sequence re-samples
                // the clock (clock_multiplier() keeps reporting this
                // sequence's value until then — successive mini-batches
                // measuring differently is the §7 repeatability
                // violation).
                clock_sampled_ = false;
                return RunState::Drained;
            }
            if (next_ready < kInf) {
                if (next_ready > t_stop) {
                    next_event_ = next_ready;
                    now_ = t_stop;
                    stats_.elapsed_ns = now_;
                    return RunState::Paused;
                }
                now_ = next_ready;  // device idles until the host catches up
                continue;
            }
            stats_.elapsed_ns = now_;
            return RunState::Blocked;
        }

        waterfill();

        // Time to the next phase boundary or completion.
        double dt = next_ready - now_;
        for (const Running& r : running_) {
            if (r.serial_left > 0.0) {
                dt = std::min(dt, r.serial_left);
            } else if (r.blocks_left > 0.0) {
                if (r.alloc > 0.0)
                    dt = std::min(dt, r.blocks_left * r.block_ns / r.alloc);
            } else {
                dt = 0.0;  // already complete (e.g., zero-block kernel)
            }
        }
        ASTRA_ASSERT(dt < kInf, "no runnable kernel can make progress");

        // Horizon clipping: kernel progress is linear within a phase
        // (dt never crosses a phase boundary), so a partial advance to
        // the horizon composes exactly with the resumed run.
        bool clipped = false;
        if (now_ + dt > t_stop) {
            next_event_ = now_ + dt;
            dt = t_stop - now_;
            clipped = true;
        }

        // Advance.
        now_ += dt;
        for (Running& r : running_) {
            if (r.serial_left > 0.0) {
                r.serial_left = std::max(0.0, r.serial_left - dt);
            } else if (r.blocks_left > 0.0 && r.alloc > 0.0) {
                r.blocks_left =
                    std::max(0.0, r.blocks_left - dt * r.alloc / r.block_ns);
                stats_.busy_sm_ns += r.alloc * dt;
            }
        }
        if (clipped) {
            now_ = t_stop;
            stats_.elapsed_ns = now_;
            return RunState::Paused;
        }

        // Retire finished kernels.
        std::vector<Running> still;
        still.reserve(running_.size());
        for (Running& r : running_) {
            const bool finished = r.serial_left <= 1e-12 &&
                                  r.blocks_left <= 1e-9;
            if (finished) {
                if (r.is_event) {
                    event_times_[static_cast<size_t>(r.event)] = now_;
                    ++stats_.events_recorded;
                } else if (config_.collect_trace) {
                    trace_.push_back({r.name, r.stream, r.started_at,
                                      now_, r.key});
                }
                streams_[static_cast<size_t>(r.stream)].active = -1;
            } else {
                still.push_back(std::move(r));
            }
        }
        // Re-link stream -> running index after compaction.
        running_ = std::move(still);
        for (Stream& s : streams_)
            s.active = -1;
        for (size_t i = 0; i < running_.size(); ++i)
            streams_[static_cast<size_t>(running_[i].stream)].active =
                static_cast<int>(i);
    }
}

void
SimGpu::record_external(EventId event, double t)
{
    ASTRA_ASSERT(event >= 0 &&
                 event < static_cast<EventId>(event_times_.size()));
    ASTRA_ASSERT(event_times_[static_cast<size_t>(event)] < 0.0,
                 "external record of an already-recorded event ", event);
    ASTRA_ASSERT(t >= 0.0);
    event_times_[static_cast<size_t>(event)] = t;
}

double
SimGpu::event_time_ns(EventId event) const
{
    ASTRA_ASSERT(event >= 0 &&
                 event < static_cast<EventId>(event_times_.size()));
    const double t = event_times_[static_cast<size_t>(event)];
    if (t < 0.0)
        fatal("querying unrecorded event ", event);
    return t;
}

bool
SimGpu::event_recorded(EventId event) const
{
    ASTRA_ASSERT(event >= 0 &&
                 event < static_cast<EventId>(event_times_.size()));
    return event_times_[static_cast<size_t>(event)] >= 0.0;
}

double
SimGpu::elapsed_ns(EventId start, EventId end) const
{
    return event_time_ns(end) - event_time_ns(start);
}

void
SimGpu::reset_events()
{
    std::fill(event_times_.begin(), event_times_.end(), -1.0);
}

double
SimGpu::utilization() const
{
    if (now_ <= 0.0)
        return 0.0;
    return stats_.busy_sm_ns / (now_ * config_.num_sms);
}

}  // namespace astra
