#include "obs/convergence.h"

#include <ostream>

namespace astra {

int64_t
ConvergenceReport::pruned_by(const std::string& mode) const
{
    int64_t total = 0;
    for (const ConvergenceEpoch& e : epochs)
        if (e.mode == mode)
            total += e.pruned;
    return total;
}

int64_t
ConvergenceReport::exhaustive_total() const
{
    int64_t total = 0;
    for (const ConvergenceEpoch& e : epochs)
        total += e.exhaustive;
    return total;
}

namespace {

/** Minimal JSON string escaping (store errors carry file paths). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

}  // namespace

void
ConvergenceReport::write_json(std::ostream& os) const
{
    os << "{\"best_ns\":" << best_ns << ",\"minibatches\":"
       << minibatches << ",\"plan_cache_hits\":" << plan_cache_hits
       << ",\"plan_cache_misses\":" << plan_cache_misses
       << ",\"whatif_evals\":" << whatif_evals
       << ",\"predictor_pruned\":" << predictor_pruned
       << ",\"measured_configs\":" << measured_configs
       << ",\"termination\":\"" << termination << "\"";
    if (!store_tier.empty()) {
        os << ",\"store\":{\"tier\":\"" << store_tier
           << "\",\"transferred_bindings\":" << store_transferred_bindings
           << ",\"seeded_keys\":" << store_seeded_keys
           << ",\"errors\":[";
        bool first = true;
        for (const std::string& e : store_errors) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << json_escape(e) << "\"";
        }
        os << "]";
        if (store_drift_demotions > 0)
            os << ",\"drift_demotions\":" << store_drift_demotions;
        os << "}";
    }
    if (!dp_skipped.empty()) {
        os << ",\"dp_skipped\":[";
        bool sfirst = true;
        for (const std::string& s : dp_skipped) {
            if (!sfirst)
                os << ",";
            sfirst = false;
            os << "\"" << json_escape(s) << "\"";
        }
        os << "]";
    }
    if (bucket_overflows > 0)
        os << ",\"bucket_overflows\":" << bucket_overflows;
    os << ",\"fault_report\":{\"injected_kernel_faults\":"
       << faults.injected_kernel_faults
       << ",\"straggler_events\":" << faults.straggler_events
       << ",\"faulted_minibatches\":" << faults.faulted_minibatches
       << ",\"dispatch_retries\":" << faults.dispatch_retries
       << ",\"wirer_retries\":" << faults.wirer_retries
       << ",\"quarantined_keys\":" << faults.quarantined_keys
       << ",\"backoff_ns\":" << faults.backoff_ns << "}"
       << ",\"epochs\":[";
    bool first = true;
    for (const ConvergenceEpoch& e : epochs) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"strategy\":" << e.strategy << ",\"stage\":\"" << e.stage
           << "\",\"mode\":\"" << e.mode << "\",\"trials\":" << e.trials
           << ",\"exhaustive\":" << e.exhaustive << ",\"pruned\":"
           << e.pruned << ",\"best_ns\":" << e.best_ns
           << ",\"minibatches_total\":" << e.minibatches_total
           << ",\"remeasure_trials\":" << e.remeasure_trials
           << ",\"samples\":" << e.samples
           << ",\"outliers_rejected\":" << e.outliers_rejected
           << ",\"max_cv\":" << e.max_cv
           << ",\"whatif_evals\":" << e.whatif_evals
           << ",\"predictor_pruned\":" << e.predictor_pruned
           << ",\"measured_configs\":" << e.measured_configs << "}";
    }
    os << "]}";
}

void
ConvergenceReport::write_csv(std::ostream& os) const
{
    os << "strategy,stage,mode,trials,exhaustive,pruned,best_ns,"
          "minibatches_total,remeasure_trials,samples,"
          "outliers_rejected,max_cv,whatif_evals,predictor_pruned,"
          "measured_configs\n";
    for (const ConvergenceEpoch& e : epochs)
        os << e.strategy << "," << e.stage << "," << e.mode << ","
           << e.trials << "," << e.exhaustive << "," << e.pruned << ","
           << e.best_ns << "," << e.minibatches_total << ","
           << e.remeasure_trials << "," << e.samples << ","
           << e.outliers_rejected << "," << e.max_cv << ","
           << e.whatif_evals << "," << e.predictor_pruned << ","
           << e.measured_configs << "\n";
}

}  // namespace astra
