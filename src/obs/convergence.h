/**
 * @file
 * Convergence reporting for the custom wirer's online exploration.
 *
 * The wirer (paper §4.7) walks the update tree stage by stage; each
 * stage is one "exploration epoch" of the report: how many real
 * mini-batch trials it spent, how large the exhaustive subspace it
 * covered would have been, and the best end-to-end mini-batch time
 * seen so far when the stage finished. The difference between the
 * exhaustive size and the trials actually run is the pruning won by
 * that stage's exploration mode (Parallel / Prefix / Hierarchical —
 * §4.5), which is what Table 7's state-space reduction quantifies.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace astra {

/** One exploration stage of one allocation strategy. */
struct ConvergenceEpoch
{
    /** Allocation-strategy index (hierarchical fork, §4.5.2). */
    int strategy = 0;

    /** Stage label: "chunks", "libs", "streams", or "final". */
    std::string stage;

    /** Exploration mode that pruned it: "parallel", "prefix", ... */
    std::string mode;

    /** Real mini-batches this stage dispatched. */
    int64_t trials = 0;

    /** Exhaustive size of the stage's subspace (product of choices). */
    int64_t exhaustive = 0;

    /** Configurations skipped thanks to the mode (exhaustive-trials). */
    int64_t pruned = 0;

    /** Best end-to-end mini-batch time seen so far (ns; -1 if none). */
    double best_ns = -1.0;

    /** Cumulative mini-batches dispatched when the stage ended. */
    int64_t minibatches_total = 0;

    // ---- measurement-noise accounting (statistics-bearing index) ---------

    /** Extra mini-batches spent re-measuring non-decisive rankings. */
    int64_t remeasure_trials = 0;

    /** Profile-index samples accepted during the stage. */
    int64_t samples = 0;

    /** Samples the index's MAD outlier test rejected in the stage. */
    int64_t outliers_rejected = 0;

    /**
     * Worst per-key coefficient of variation among the stage's
     * variables' measured choices (0 at base clock; grows with
     * autoboost-style jitter, §7).
     */
    double max_cv = 0.0;

    // ---- what-if accounting (core/whatif.h, §5.13) -----------------------

    /** Host replays the stage spent (trace capture, ranking, confirms). */
    int64_t whatif_evals = 0;

    /** Options masked: predictor-nominated, replay-confirmed. */
    int64_t predictor_pruned = 0;

    /** Dispatched configurations (>= 1 live mini-batch each). */
    int64_t measured_configs = 0;
};

/**
 * Fault-injection and fault-tolerance accounting for one exploration
 * (all zeros on a fault-free run). Distinguishes the two retry layers:
 * dispatch_retries are the dispatcher's own abort-and-replay attempts
 * inside a mini-batch transaction; wirer_retries are whole-trial
 * re-measurements after every repeat of a trial came back faulted.
 */
struct FaultReport
{
    /** Transient kernel faults injected across all dispatch attempts. */
    int64_t injected_kernel_faults = 0;

    /** Straggler latency spikes injected. */
    int64_t straggler_events = 0;

    /** Mini-batches still faulted after the dispatcher's retries. */
    int64_t faulted_minibatches = 0;

    /** Dispatcher-level abort-and-replay attempts. */
    int64_t dispatch_retries = 0;

    /** Wirer-level whole-trial re-measurements. */
    int64_t wirer_retries = 0;

    /** Profile keys quarantined (only ever faulted, never sampled). */
    int64_t quarantined_keys = 0;

    /** Simulated exponential-backoff time between retry attempts. */
    double backoff_ns = 0.0;
};

/** Full exploration history, retrievable from WirerResult. */
struct ConvergenceReport
{
    std::vector<ConvergenceEpoch> epochs;

    /** Final best end-to-end time (matches WirerResult::best_ns). */
    double best_ns = -1.0;

    /** Total exploration mini-batches. */
    int64_t minibatches = 0;

    /**
     * Why exploration stopped: "complete", "budget" (safety valve),
     * "fault_quarantine" (a config exhausted its fault-retry budget),
     * or "resume" (the valve tripped while a checkpoint journal was
     * still replaying). See core/wirer.h's WirerTermination.
     */
    std::string termination = "complete";

    /** Fault-injection / fault-tolerance accounting. */
    FaultReport faults;

    // ---- plan-store accounting (core/plan_store.h) -----------------------

    /**
     * Which rung of the knowledge-base ladder answered this job:
     * "miss" (cold), "l3" (library priors), "l2" (shape-neighbor
     * transfer), "l1" (exact hit, wiring skipped), or "" when no store
     * was configured.
     */
    std::string store_tier;

    /** Variables pre-bound from a transferred L2 configuration. */
    int64_t store_transferred_bindings = 0;

    /** Profile keys seeded from a neighbor's stored statistics. */
    int64_t store_seeded_keys = 0;

    /**
     * Diagnoses of store entries that were present but rejected
     * (corrupt, truncated, wrong version) during lookup — a decaying
     * store is visible here instead of silently cold-starting.
     */
    std::vector<std::string> store_errors;

    /**
     * L1 exact hits whose verification mini-batch drifted beyond
     * MeasurementPolicy::store_drift_rel of the stored timing and were
     * demoted to L2 warm starts instead of being adopted outright.
     */
    int64_t store_drift_demotions = 0;

    // ---- coverage diagnostics --------------------------------------------

    /**
     * Data-parallel degrees measure_scaling() skipped (degree does not
     * divide the global batch), one human-readable diagnosis each — a
     * sweep that silently measured fewer points than asked is visible
     * here.
     */
    std::vector<std::string> dp_skipped;

    /**
     * Mini-batch lengths that overflowed the largest profiling bucket
     * and were clamped (BucketedAstra::bucket_for). A nonzero tally
     * means steady-state dispatches ran on a plan wired for a shorter
     * sequence.
     */
    int64_t bucket_overflows = 0;

    // ---- what-if accounting (core/whatif.h, §5.13) -----------------------

    /** Total host replays across the exploration (0 when off). */
    int64_t whatif_evals = 0;

    /** Total options masked via the three-tier decision path. */
    int64_t predictor_pruned = 0;

    /** Total configurations that cost at least one live mini-batch. */
    int64_t measured_configs = 0;

    // ---- plan-cache accounting (Scheduler::build_cached) -----------------

    /** Dispatches that reused an already-lowered ExecutionPlan. */
    int64_t plan_cache_hits = 0;

    /** Dispatches that had to lower their configuration. */
    int64_t plan_cache_misses = 0;

    /** Hit fraction, 0 when nothing went through the cache. */
    double plan_cache_hit_rate() const
    {
        const int64_t total = plan_cache_hits + plan_cache_misses;
        return total > 0
                   ? static_cast<double>(plan_cache_hits) /
                         static_cast<double>(total)
                   : 0.0;
    }

    /** Sum of `pruned` over epochs with the given mode. */
    int64_t pruned_by(const std::string& mode) const;

    /** Sum of `exhaustive` over all epochs. */
    int64_t exhaustive_total() const;

    /** Machine-readable dump: {"epochs":[...],"best_ns":...}. */
    void write_json(std::ostream& os) const;

    /** Spreadsheet-friendly dump, one epoch per row. */
    void write_csv(std::ostream& os) const;
};

}  // namespace astra
