#include "obs/export.h"

#include <array>
#include <map>
#include <ostream>

namespace astra {

namespace {

/** Full JSON string escaping for span and counter names. */
std::string
escape(const std::string& s)
{
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            continue;
          case '\\':
            out += "\\\\";
            continue;
          case '\n':
            out += "\\n";
            continue;
          case '\r':
            out += "\\r";
            continue;
          case '\t':
            out += "\\t";
            continue;
          case '\b':
            out += "\\b";
            continue;
          case '\f':
            out += "\\f";
            continue;
          default:
            break;
        }
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
            out += "\\u00";
            out += hex[u >> 4];
            out += hex[u & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

void
emit_kernel_event(std::ostream& os, const TraceSpan& s, bool* first)
{
    if (!*first)
        os << ",";
    *first = false;
    // Durations in the chrome format are microseconds. The args block
    // carries what the event name cannot: the profile-index key the
    // span was measured under, the stream it ran on, and the fact that
    // the duration came from the (simulated) device clock.
    os << "{\"name\":\"" << escape(s.name)
       << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":" << s.start_ns / 1e3
       << ",\"dur\":" << (s.end_ns - s.start_ns) / 1e3
       << ",\"pid\":0,\"tid\":" << s.stream << ",\"args\":{\"key\":\""
       << escape(s.key) << "\",\"stream\":" << s.stream
       << ",\"dur_src\":\"device\"}}";
}

void
emit_process_name(std::ostream& os, int pid, const char* name,
                  bool* first)
{
    if (!*first)
        os << ",";
    *first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << escape(name) << "\"}}";
}

}  // namespace

void
write_chrome_trace(std::ostream& os, const std::vector<TraceSpan>& spans)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceSpan& s : spans)
        emit_kernel_event(os, s, &first);
    os << "],\"displayTimeUnit\":\"ns\"}";
}

namespace obs {

void
write_chrome_trace(std::ostream& os, const std::vector<Span>& host,
                   const std::vector<TraceSpan>& kernels)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    emit_process_name(os, 0, "sim-gpu", &first);
    emit_process_name(os, 1, "host", &first);
    for (const Span& s : host) {
        os << ",{\"name\":\"" << escape(s.name) << "\",\"cat\":\""
           << category_name(s.cat) << "\",\"ph\":\"X\",\"ts\":"
           << s.start_ns / 1e3 << ",\"dur\":"
           << (s.end_ns - s.start_ns) / 1e3 << ",\"pid\":1,\"tid\":"
           << s.tid << ",\"args\":{\"dur_src\":\"host\"}}";
    }
    for (const TraceSpan& s : kernels)
        emit_kernel_event(os, s, &first);
    os << "],\"displayTimeUnit\":\"ns\"}";
}

void
write_chrome_trace(std::ostream& os)
{
    write_chrome_trace(os, host_spans(), kernel_spans());
}

void
write_text_summary(std::ostream& os)
{
    const std::vector<Span> spans = host_spans();
    const std::vector<TraceSpan> kernels = kernel_spans();

    // Span count and total self-inclusive time per category.
    std::array<int64_t, kNumCategories> count{};
    std::array<double, kNumCategories> total_ns{};
    for (const Span& s : spans) {
        const auto c = static_cast<size_t>(s.cat);
        ++count[c];
        total_ns[c] += s.end_ns - s.start_ns;
    }
    os << "== obs summary ==\n";
    os << "spans by category:\n";
    for (size_t c = 0; c < count.size(); ++c) {
        if (count[c] == 0)
            continue;
        os << "  " << category_name(static_cast<Category>(c)) << ": "
           << count[c] << " spans, " << total_ns[c] / 1e6
           << " ms inclusive\n";
    }
    os << "  kernel (device): " << kernels.size() << " spans";
    if (dropped_kernel_spans() > 0)
        os << " (+" << dropped_kernel_spans() << " dropped at cap)";
    os << "\n";

    const auto counters = counter_values();
    if (!counters.empty()) {
        os << "counters:\n";
        for (const auto& [name, v] : counters)
            os << "  " << name << " = " << v << "\n";
    }
    const auto hists = histogram_values();
    if (!hists.empty()) {
        os << "histograms:\n";
        for (const auto& [name, st] : hists)
            os << "  " << name << ": n=" << st.count() << " mean="
               << st.mean() << " min=" << st.min() << " max=" << st.max()
               << "\n";
    }
}

}  // namespace obs
}  // namespace astra
