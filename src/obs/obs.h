/**
 * @file
 * Whole-stack observability: spans, counters, histograms.
 *
 * Astra's premise is that optimization is driven by measurement of
 * real executions (paper §4.6, the profile index); this layer applies
 * the same philosophy to the system itself. Every stage of the stack —
 * search-space enumeration, the custom wirer's exploration, runtime
 * dispatch, allocation, and the simulated device — emits RAII scoped
 * spans and named counters into one process-global recorder, which
 * exporters (obs/export.h) render as a Chrome trace-event timeline or
 * a plain-text summary.
 *
 * The layer is off by default and designed so the disabled path is a
 * single relaxed atomic load: spans skip all bookkeeping, counters do
 * not increment, and nothing allocates. Enable programmatically with
 * set_enabled(), or via the ASTRA_TRACE environment variable / the
 * --trace-out flag of the examples and benches (init_from_env()).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/stats.h"

namespace astra {

/**
 * One executed kernel on the simulated-device timeline. Lives in the
 * obs layer (historically sim/trace.h) so host-side spans and device
 * spans can be merged by one exporter; sim/trace.h re-exports it.
 */
struct TraceSpan
{
    std::string name;
    int stream = 0;
    double start_ns = 0.0;
    double end_ns = 0.0;
    /** Profile-index key of the launching step ("" when unkeyed). */
    std::string key;
};

namespace obs {

/** What layer of the stack a span came from. */
enum class Category
{
    Enumerate,  ///< compiler-side state-space enumeration
    Wire,       ///< custom-wirer exploration (stages, epochs)
    Dispatch,   ///< runtime plan dispatch / execution
    Kernel,     ///< simulated-device kernel execution
    Alloc,      ///< memory planning / tensor-map realization
    Serve,      ///< online serving loop (batches, re-wires, swaps)
};

/** Number of Category values (exporter tally arrays). */
inline constexpr size_t kNumCategories = 6;

/** Stable lowercase name ("enumerate", "wire", ...). */
const char* category_name(Category cat);

/** One host-side span on the observability timeline. */
struct Span
{
    std::string name;
    Category cat = Category::Wire;
    int tid = 0;          ///< small per-thread id (0 = first thread)
    double start_ns = 0.0;
    double end_ns = 0.0;
};

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/** True when span/counter collection is active. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn collection on or off (off discards nothing already recorded). */
void set_enabled(bool on);

/** Monotonic nanoseconds since the recorder's process-start epoch. */
double now_ns();

/**
 * RAII scoped span. When tracing is disabled construction and
 * destruction are a single atomic load each — cheap enough to leave in
 * hot paths unconditionally.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Category cat, std::string_view name);

    /**
     * Span pinned to a display lane instead of the caller's thread id:
     * the exporter renders it at tid 100+lane. The serving fleet uses
     * one lane per replica so failover hops read left-to-right in the
     * Chrome trace even though the DES loop is single-threaded.
     */
    ScopedSpan(Category cat, std::string_view name, int lane);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    bool active_ = false;
    Category cat_ = Category::Wire;
    int lane_ = -1;  ///< display lane (-1 = use the thread id)
    double start_ns_ = 0.0;
    std::string name_;
};

/**
 * A named monotonic counter. Obtain a stable reference once (they are
 * never destroyed while the process lives) and add() on the hot path:
 *
 *   static obs::Counter& c = obs::counter("dispatch.kernels");
 *   c.add(n);
 *
 * add() is a no-op while tracing is disabled.
 */
class Counter
{
  public:
    void
    add(int64_t n = 1)
    {
        if (enabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (obs::reset() between test cases). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string& name() const { return name_; }

  private:
    friend Counter& counter(std::string_view);
    explicit Counter(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<int64_t> value_{0};
};

/** Registry lookup; creates the counter on first use. */
Counter& counter(std::string_view name);

/** Record one sample into the named histogram (no-op when disabled). */
void observe(std::string_view name, double value);

/** Append simulated-device kernel spans, shifted by anchor_ns. */
void add_kernel_spans(const std::vector<TraceSpan>& spans,
                      double anchor_ns);

// ---- snapshots (exporters and tests) ---------------------------------

std::vector<Span> host_spans();
std::vector<TraceSpan> kernel_spans();
std::map<std::string, int64_t> counter_values();
std::map<std::string, RunningStats> histogram_values();

/** Kernel spans dropped once the retention cap was hit. */
int64_t dropped_kernel_spans();

/** Clear all recorded spans/counters/histograms (tests). */
void reset();

/**
 * Read ASTRA_TRACE. Empty/unset or "0": leave tracing off. Any other
 * value enables collection; a value that is not "1" is additionally
 * taken as an output path and a Chrome trace + text summary are
 * written there at process exit. Safe to call repeatedly.
 * @return true when tracing is (already or now) enabled.
 */
bool init_from_env();

/** Enable tracing and write a Chrome trace to `path` at exit. */
void set_trace_path(std::string path);

/** Write the trace to the configured path now (no-op without one). */
void flush();

}  // namespace obs
}  // namespace astra
