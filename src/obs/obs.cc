#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <shared_mutex>

#include "obs/export.h"
#include "support/logging.h"

namespace astra::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/**
 * Retention cap on device kernel spans: a long exploration launches
 * millions of simulated kernels, and an unbounded trace would exhaust
 * memory. Past the cap spans are counted but dropped (the text
 * summary reports the drop count).
 */
constexpr size_t kMaxKernelSpans = 500000;

/**
 * Process-global recorder state, created on first use.
 *
 * The registry sits on the wirer's concurrent trial path (every
 * dispatch bumps counters), so the mutex is a shared one: the common
 * case — looking up an already-registered counter — takes a shared
 * lock and scales across measurement threads; registration and every
 * mutation of non-atomic state (spans, histograms) take it exclusive.
 * Counter increments themselves are lock-free (Counter::add is a
 * relaxed atomic fetch_add).
 */
struct Recorder
{
    std::shared_mutex mu;
    std::vector<Span> host_spans;
    std::vector<TraceSpan> kernel_spans;
    int64_t dropped_kernel_spans = 0;
    std::map<std::string, Counter*, std::less<>> counters;
    std::map<std::string, RunningStats, std::less<>> histograms;
    std::string trace_path;
    std::atomic<int> next_tid{0};
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Recorder&
recorder()
{
    static Recorder* r = new Recorder();  // never destroyed: see counter()
    return *r;
}

/** Small dense thread id for trace tracks. */
int
this_tid()
{
    thread_local const int tid =
        recorder().next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

}  // namespace

const char*
category_name(Category cat)
{
    switch (cat) {
      case Category::Enumerate: return "enumerate";
      case Category::Wire: return "wire";
      case Category::Dispatch: return "dispatch";
      case Category::Kernel: return "kernel";
      case Category::Alloc: return "alloc";
      case Category::Serve: return "serve";
    }
    return "unknown";
}

void
set_enabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

double
now_ns()
{
    const auto d = std::chrono::steady_clock::now() - recorder().epoch;
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

ScopedSpan::ScopedSpan(Category cat, std::string_view name)
{
    if (!enabled())
        return;
    active_ = true;
    cat_ = cat;
    name_ = name;
    start_ns_ = now_ns();
}

ScopedSpan::ScopedSpan(Category cat, std::string_view name, int lane)
    : ScopedSpan(cat, name)
{
    lane_ = lane;
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    Span s;
    s.name = std::move(name_);
    s.cat = cat_;
    // Lane-pinned spans render on a fixed trace track (100+lane) so
    // per-replica serving activity separates visually even though the
    // DES loop runs on one thread.
    s.tid = lane_ >= 0 ? 100 + lane_ : this_tid();
    s.start_ns = start_ns_;
    s.end_ns = now_ns();
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    r.host_spans.push_back(std::move(s));
}

Counter&
counter(std::string_view name)
{
    Recorder& r = recorder();
    {
        // Fast path: the counter exists (every call after the first
        // for a given name). Shared lock — concurrent measurement
        // threads don't serialize on the registry.
        std::shared_lock<std::shared_mutex> lock(r.mu);
        const auto it = r.counters.find(name);
        if (it != r.counters.end())
            return *it->second;
    }
    std::lock_guard<std::shared_mutex> lock(r.mu);
    auto it = r.counters.find(name);
    if (it == r.counters.end()) {
        // Leaked deliberately: hot paths hold references across the
        // whole process lifetime (including atexit flush).
        auto* c = new Counter(std::string(name));
        it = r.counters.emplace(c->name(), c).first;
    }
    return *it->second;
}

void
observe(std::string_view name, double value)
{
    if (!enabled())
        return;
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    auto it = r.histograms.find(name);
    if (it == r.histograms.end())
        it = r.histograms.emplace(std::string(name), RunningStats{})
                 .first;
    it->second.add(value);
}

void
add_kernel_spans(const std::vector<TraceSpan>& spans, double anchor_ns)
{
    if (!enabled() || spans.empty())
        return;
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    for (const TraceSpan& s : spans) {
        if (r.kernel_spans.size() >= kMaxKernelSpans) {
            r.dropped_kernel_spans +=
                static_cast<int64_t>(spans.size()) -
                static_cast<int64_t>(&s - spans.data());
            break;
        }
        TraceSpan shifted = s;
        shifted.start_ns += anchor_ns;
        shifted.end_ns += anchor_ns;
        r.kernel_spans.push_back(std::move(shifted));
    }
}

std::vector<Span>
host_spans()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    return r.host_spans;
}

std::vector<TraceSpan>
kernel_spans()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    return r.kernel_spans;
}

std::map<std::string, int64_t>
counter_values()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    std::map<std::string, int64_t> out;
    for (const auto& [name, c] : r.counters)
        out[name] = c->value();
    return out;
}

std::map<std::string, RunningStats>
histogram_values()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    return {r.histograms.begin(), r.histograms.end()};
}

int64_t
dropped_kernel_spans()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    return r.dropped_kernel_spans;
}

void
reset()
{
    Recorder& r = recorder();
    std::lock_guard<std::shared_mutex> lock(r.mu);
    r.host_spans.clear();
    r.kernel_spans.clear();
    r.dropped_kernel_spans = 0;
    for (auto& [name, c] : r.counters)
        c->reset();
    r.histograms.clear();
}

bool
init_from_env()
{
    const char* env = std::getenv("ASTRA_TRACE");
    if (env == nullptr || *env == '\0' || std::string_view(env) == "0")
        return enabled();
    if (std::string_view(env) == "1")
        set_enabled(true);
    else
        set_trace_path(env);
    return true;
}

void
set_trace_path(std::string path)
{
    set_enabled(true);
    Recorder& r = recorder();
    bool arm_atexit = false;
    {
        std::lock_guard<std::shared_mutex> lock(r.mu);
        arm_atexit = r.trace_path.empty() && !path.empty();
        r.trace_path = std::move(path);
    }
    if (arm_atexit)
        std::atexit([] { flush(); });
}

void
flush()
{
    std::string path;
    {
        Recorder& r = recorder();
        std::lock_guard<std::shared_mutex> lock(r.mu);
        path = r.trace_path;
    }
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot write trace to ", path);
        return;
    }
    write_chrome_trace(out, host_spans(), kernel_spans());
    inform("obs: wrote trace to ", path);
}

}  // namespace astra::obs
