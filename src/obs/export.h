/**
 * @file
 * Exporters for the observability recorder (obs/obs.h).
 *
 * Chrome trace-event JSON places host-side spans (pid 1, one track
 * per thread) and simulated-device kernel spans (pid 0, one track per
 * stream) on a single timeline, viewable in chrome://tracing or
 * Perfetto. Device spans carry simulated time shifted to the host
 * clock of the dispatch that produced them, so each mini-batch's
 * kernels appear under its dispatch span.
 *
 * The kernel-span-only overload is the original sim tracer's exporter
 * (pre-obs sim/trace.h) and is kept for single-run schedule dumps.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/obs.h"

namespace astra {

/** Render device kernel spans alone (legacy sim-trace format). */
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSpan>& spans);

namespace obs {

/** Render host + device spans as one Chrome trace-event document. */
void write_chrome_trace(std::ostream& os, const std::vector<Span>& host,
                        const std::vector<TraceSpan>& kernels);

/** Render the global recorder's current contents. */
void write_chrome_trace(std::ostream& os);

/**
 * Plain-text report: span time per category, counters, histograms.
 * Reads the global recorder.
 */
void write_text_summary(std::ostream& os);

}  // namespace obs
}  // namespace astra
